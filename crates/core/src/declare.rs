//! The incast programming abstraction (§6, "Proxying incast through
//! programming abstraction").
//!
//! "We need a programming abstraction that allows developers to declare
//! when their application creates incast-like communication across
//! components that could be remote. At deployment time, the cloud provider
//! can use this information to convert an inter-datacenter incast into a
//! proxy-assisted one, without requiring any changes or permission from
//! the application."
//!
//! Applications describe traffic in terms of **logical components**
//! ([`IncastDecl`]); the provider supplies the physical placement and the
//! planner ([`compile`]) resolves each declaration into a concrete routing
//! decision: direct, or via a proxy allocated through a
//! [`crate::orchestrator::ProxySelector`] — but only when the
//! [`crate::predict`] model expects a benefit (§4.2's small incasts stay on
//! the shortest path). The paper warns that "a poorly designed abstraction
//! may introduce new semantic violations"; the planner therefore *fails
//! closed* — any ambiguity (unknown component, sink among sources, missing
//! placement) is a hard [`PlanError`], never a guess.

use crate::orchestrator::{IncastRequest, ProxySelector};
use crate::predict::{predict, IncastProfile};
use dcsim::det::DetMap;
use dcsim::packet::HostId;
use dcsim::time::{Bandwidth, SimDuration, PS_PER_US};
use dcsim::topology::Topology;
use serde::Serialize;

/// A logical application component (the unit of placement).
pub type Component = String;

/// A developer's declaration of one incast-prone exchange.
#[derive(Debug, Clone)]
pub struct IncastDecl {
    /// Human-readable name ("moe-dispatch", "shard-rebuild", ...).
    pub name: String,
    /// Components that transmit.
    pub sources: Vec<Component>,
    /// The component that receives.
    pub sink: Component,
    /// Expected bytes per occurrence.
    pub expected_bytes: u64,
    /// Expected period between occurrences, if the exchange is periodic
    /// (lets the operator pre-arm rerouting; see [`crate::detect`]).
    pub period: Option<SimDuration>,
}

/// Builder for [`IncastDecl`] — the developer-facing API surface.
#[derive(Debug, Clone)]
pub struct IncastDeclBuilder {
    name: String,
    sources: Vec<Component>,
    sink: Option<Component>,
    expected_bytes: Option<u64>,
    period: Option<SimDuration>,
}

impl IncastDecl {
    /// Starts declaring an incast-prone exchange.
    pub fn named(name: impl Into<String>) -> IncastDeclBuilder {
        IncastDeclBuilder {
            name: name.into(),
            sources: Vec::new(),
            sink: None,
            expected_bytes: None,
            period: None,
        }
    }
}

impl IncastDeclBuilder {
    /// Adds a transmitting component.
    pub fn source(mut self, component: impl Into<Component>) -> Self {
        self.sources.push(component.into());
        self
    }

    /// Adds many transmitting components.
    pub fn sources<I, C>(mut self, components: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<Component>,
    {
        self.sources.extend(components.into_iter().map(Into::into));
        self
    }

    /// Sets the receiving component.
    pub fn sink(mut self, component: impl Into<Component>) -> Self {
        self.sink = Some(component.into());
        self
    }

    /// Sets the expected bytes per occurrence.
    pub fn expected_bytes(mut self, bytes: u64) -> Self {
        self.expected_bytes = Some(bytes);
        self
    }

    /// Declares the exchange periodic.
    pub fn periodic(mut self, period: SimDuration) -> Self {
        self.period = Some(period);
        self
    }

    /// Finalizes the declaration.
    ///
    /// # Errors
    /// Ambiguous declarations are rejected outright (the paper's semantic-
    /// violation concern): no sources, no sink, sink listed as a source,
    /// duplicate sources, or missing volume.
    pub fn build(self) -> Result<IncastDecl, PlanError> {
        let sink = self.sink.ok_or(PlanError::MissingSink)?;
        if self.sources.is_empty() {
            return Err(PlanError::NoSources);
        }
        if self.sources.contains(&sink) {
            return Err(PlanError::SinkIsSource(sink));
        }
        let mut dedup = self.sources.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != self.sources.len() {
            return Err(PlanError::DuplicateSource);
        }
        let expected_bytes = self.expected_bytes.ok_or(PlanError::MissingVolume)?;
        if expected_bytes == 0 {
            return Err(PlanError::MissingVolume);
        }
        Ok(IncastDecl {
            name: self.name,
            sources: self.sources,
            sink,
            expected_bytes,
            period: self.period,
        })
    }
}

/// Why a plan could not be produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum PlanError {
    /// The declaration has no sink.
    MissingSink,
    /// The declaration has no sources.
    NoSources,
    /// The sink also appears as a source.
    SinkIsSource(Component),
    /// A source appears twice.
    DuplicateSource,
    /// No expected volume declared.
    MissingVolume,
    /// A declared component has no physical placement.
    Unplaced(Component),
    /// Sources span multiple datacenters — one proxy cannot cover them;
    /// the planner refuses rather than silently splitting.
    SourcesSpanDatacenters,
    /// The orchestrator had no eligible proxy.
    NoProxyAvailable,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MissingSink => write!(f, "declaration has no sink"),
            PlanError::NoSources => write!(f, "declaration has no sources"),
            PlanError::SinkIsSource(c) => write!(f, "sink {c:?} also listed as a source"),
            PlanError::DuplicateSource => write!(f, "duplicate source component"),
            PlanError::MissingVolume => write!(f, "expected_bytes missing or zero"),
            PlanError::Unplaced(c) => write!(f, "component {c:?} has no placement"),
            PlanError::SourcesSpanDatacenters => {
                write!(f, "sources span multiple datacenters")
            }
            PlanError::NoProxyAvailable => write!(f, "no eligible proxy host"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The routing decision for one declared incast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Routing {
    /// Same-datacenter or no expected benefit: shortest path.
    Direct,
    /// Cross-datacenter with expected benefit: relay via this proxy.
    ViaProxy(HostId),
}

/// A compiled deployment decision.
#[derive(Debug, Clone, Serialize)]
pub struct PlannedIncast {
    /// Declaration name.
    pub name: String,
    /// Resolved sender hosts.
    pub senders: Vec<HostId>,
    /// Resolved receiver host.
    pub receiver: HostId,
    /// The routing decision.
    pub routing: Routing,
    /// The predictor's estimated completion-time reduction.
    pub estimated_reduction: f64,
}

/// Compiles declarations against a placement, deciding per incast whether
/// to reroute through a proxy (allocated via `selector`).
pub fn compile(
    decls: &[IncastDecl],
    placement: &DetMap<Component, HostId>,
    topo: &Topology,
    selector: &mut dyn ProxySelector,
) -> Result<Vec<PlannedIncast>, PlanError> {
    let mut plans = Vec::with_capacity(decls.len());
    for (i, decl) in decls.iter().enumerate() {
        let resolve = |c: &Component| -> Result<HostId, PlanError> {
            placement
                .get(c)
                .copied()
                .ok_or_else(|| PlanError::Unplaced(c.clone()))
        };
        let senders: Vec<HostId> = decl.sources.iter().map(resolve).collect::<Result<_, _>>()?;
        let receiver = resolve(&decl.sink)?;

        let sender_dcs: Vec<_> = senders.iter().map(|&h| topo.host_dc(h)).collect();
        if sender_dcs.windows(2).any(|w| w[0] != w[1]) {
            return Err(PlanError::SourcesSpanDatacenters);
        }
        let cross_dc = topo.host_dc(receiver) != sender_dcs[0];

        let (routing, estimated_reduction) = if !cross_dc {
            (Routing::Direct, 0.0)
        } else {
            let profile = profile_for(decl, &senders, receiver, topo);
            let prediction = predict(&profile);
            if !prediction.use_proxy {
                (Routing::Direct, prediction.estimated_reduction)
            } else {
                let request = IncastRequest {
                    id: i as u64,
                    senders: senders.clone(),
                    receiver,
                    expected_bytes: decl.expected_bytes,
                };
                let assignment = selector
                    .select(&request)
                    .ok_or(PlanError::NoProxyAvailable)?;
                (
                    Routing::ViaProxy(assignment.proxy),
                    prediction.estimated_reduction,
                )
            }
        };
        plans.push(PlannedIncast {
            name: decl.name.clone(),
            senders,
            receiver,
            routing,
            estimated_reduction,
        });
    }
    Ok(plans)
}

fn profile_for(
    decl: &IncastDecl,
    senders: &[HostId],
    receiver: HostId,
    topo: &Topology,
) -> IncastProfile {
    let probe = senders[0];
    let inter_rtt = topo.base_rtt(probe, receiver, 1500, 64);
    IncastProfile {
        total_bytes: decl.expected_bytes,
        degree: senders.len(),
        inter_rtt,
        // A local proxy is a couple of intra-DC hops away.
        intra_rtt: SimDuration(10 * PS_PER_US),
        bottleneck: topo.path_bottleneck(probe, receiver),
        bottleneck_buffer: 17_015_000,
    }
}

/// Convenience: bandwidth of the standard evaluation bottleneck. Exposed
/// for examples that build profiles by hand.
pub fn default_bottleneck() -> Bandwidth {
    Bandwidth::gbps(100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::GlobalOrchestrator;
    use dcsim::topology::{two_dc_leaf_spine, TwoDcParams};

    fn decl(bytes: u64) -> IncastDecl {
        IncastDecl::named("test")
            .sources(["a", "b", "c", "d"])
            .sink("agg")
            .expected_bytes(bytes)
            .build()
            .unwrap()
    }

    fn setup() -> (Topology, DetMap<Component, HostId>, GlobalOrchestrator) {
        let topo = two_dc_leaf_spine(&TwoDcParams::default());
        let dc0 = topo.hosts_in_dc(0);
        let dc1 = topo.hosts_in_dc(1);
        let placement: DetMap<Component, HostId> = [
            ("a".to_string(), dc0[0]),
            ("b".to_string(), dc0[1]),
            ("c".to_string(), dc0[2]),
            ("d".to_string(), dc0[3]),
            ("agg".to_string(), dc1[0]),
            ("local-agg".to_string(), dc0[4]),
        ]
        .into();
        let orch = GlobalOrchestrator::new(dc0[32..].to_vec());
        (topo, placement, orch)
    }

    #[test]
    fn builder_happy_path() {
        let d = decl(100_000_000);
        assert_eq!(d.sources.len(), 4);
        assert_eq!(d.sink, "agg");
    }

    #[test]
    fn builder_rejects_ambiguity() {
        assert_eq!(
            IncastDecl::named("x")
                .source("a")
                .expected_bytes(1)
                .build()
                .unwrap_err(),
            PlanError::MissingSink
        );
        assert_eq!(
            IncastDecl::named("x")
                .sink("s")
                .expected_bytes(1)
                .build()
                .unwrap_err(),
            PlanError::NoSources
        );
        assert_eq!(
            IncastDecl::named("x")
                .source("s")
                .sink("s")
                .expected_bytes(1)
                .build()
                .unwrap_err(),
            PlanError::SinkIsSource("s".into())
        );
        assert_eq!(
            IncastDecl::named("x")
                .sources(["a", "a"])
                .sink("s")
                .expected_bytes(1)
                .build()
                .unwrap_err(),
            PlanError::DuplicateSource
        );
        assert_eq!(
            IncastDecl::named("x")
                .source("a")
                .sink("s")
                .build()
                .unwrap_err(),
            PlanError::MissingVolume
        );
    }

    #[test]
    fn cross_dc_large_incast_gets_proxy() {
        let (topo, placement, mut orch) = setup();
        let plans = compile(&[decl(100_000_000)], &placement, &topo, &mut orch).unwrap();
        assert_eq!(plans.len(), 1);
        match plans[0].routing {
            Routing::ViaProxy(p) => {
                assert_eq!(topo.host_dc(p), Some(0), "proxy in the senders' DC");
            }
            ref other => panic!("expected proxy routing, got {other:?}"),
        }
        assert!(plans[0].estimated_reduction > 0.0);
    }

    #[test]
    fn cross_dc_small_incast_stays_direct() {
        let (topo, placement, mut orch) = setup();
        let plans = compile(&[decl(20_000_000)], &placement, &topo, &mut orch).unwrap();
        assert_eq!(
            plans[0].routing,
            Routing::Direct,
            "§4.2: 20 MB gains nothing"
        );
    }

    #[test]
    fn same_dc_incast_stays_direct() {
        let (topo, mut placement, mut orch) = setup();
        // Move the sink into DC 0.
        let local = placement["local-agg"];
        placement.insert("agg".to_string(), local);
        let plans = compile(&[decl(100_000_000)], &placement, &topo, &mut orch).unwrap();
        assert_eq!(plans[0].routing, Routing::Direct);
    }

    #[test]
    fn unplaced_component_fails_closed() {
        let (topo, mut placement, mut orch) = setup();
        placement.remove("c");
        let err = compile(&[decl(1_000_000)], &placement, &topo, &mut orch).unwrap_err();
        assert_eq!(err, PlanError::Unplaced("c".into()));
    }

    #[test]
    fn spanning_sources_fail_closed() {
        let (topo, mut placement, mut orch) = setup();
        let far = topo.hosts_in_dc(1)[5];
        placement.insert("d".to_string(), far);
        let err = compile(&[decl(100_000_000)], &placement, &topo, &mut orch).unwrap_err();
        assert_eq!(err, PlanError::SourcesSpanDatacenters);
    }

    #[test]
    fn concurrent_declarations_get_distinct_proxies() {
        let (topo, mut placement, mut orch) = setup();
        let dc0 = topo.hosts_in_dc(0);
        let dc1 = topo.hosts_in_dc(1);
        for (i, c) in ["e", "f", "g", "h"].iter().enumerate() {
            placement.insert(c.to_string(), dc0[8 + i]);
        }
        placement.insert("agg2".to_string(), dc1[1]);
        let d1 = decl(100_000_000);
        let d2 = IncastDecl::named("second")
            .sources(["e", "f", "g", "h"])
            .sink("agg2")
            .expected_bytes(100_000_000)
            .build()
            .unwrap();
        let plans = compile(&[d1, d2], &placement, &topo, &mut orch).unwrap();
        let proxies: Vec<_> = plans
            .iter()
            .filter_map(|p| match p.routing {
                Routing::ViaProxy(h) => Some(h),
                Routing::Direct => None,
            })
            .collect();
        assert_eq!(proxies.len(), 2);
        assert_ne!(proxies[0], proxies[1], "orchestrator avoids contention");
    }

    #[test]
    fn periodic_metadata_is_preserved() {
        let d = IncastDecl::named("sync")
            .sources(["a", "b"])
            .sink("s")
            .expected_bytes(1)
            .periodic(SimDuration::from_millis(250))
            .build()
            .unwrap();
        assert_eq!(d.period, Some(SimDuration::from_millis(250)));
    }
}
