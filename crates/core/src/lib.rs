//! # incast-core — inter-datacenter incast mitigation with a proxy
//!
//! Library reproduction of *Mitigating Inter-datacenter Incast with a
//! Proxy: The shortest path is not necessarily the fastest* (HotNets '25).
//!
//! The paper's proposition: route inter-datacenter incast traffic through a
//! proxy in the **sending** datacenter. The extra hop shifts the congestion
//! bottleneck from the receiver's down-ToR (milliseconds of feedback delay
//! away) to the proxy's down-ToR (microseconds away), letting senders
//! converge quickly to the bottleneck rate.
//!
//! What lives here:
//!
//! * [`scheme`] — the three evaluation schemes (Baseline, Proxy Naive,
//!   Proxy Streamlined) wired onto the `dcsim` simulator.
//! * [`experiment`] — the seeded experiment harness behind every figure.
//! * [`orchestrator`] — proxy selection across concurrent incasts
//!   (§5 Future work #3): a global orchestrator, a decentralized
//!   trial-based variant, and a sharded crash-tolerant control plane
//!   with leases, health gossip, and graceful degradation.
//! * [`lossdetect`] — reorder-tolerant packet-loss tracking without switch
//!   trimming support (§5 Future work #1), with bounded memory.
//! * [`declare`] — the programming abstraction of §6: applications declare
//!   incast-prone communication; a deployment planner converts declarations
//!   into proxy-assisted routings.
//! * [`detect`] — pattern-aware incast detection of §6: periodicity
//!   detection over per-destination traffic counts for third-party apps.
//! * [`predict`] — the "should this incast use a proxy?" benefit predictor
//!   (§5 FW#3 notes not all incasts benefit; §4.2 shows the 20 MB case).
//! * [`proxy_detect`] — Future Work #1 implemented: a trimming-free proxy
//!   that infers losses from sequence gaps (declare-on-evict, quiescence
//!   sweeps, exponential-backoff re-NACKs).
//! * [`runtime`] — the §6 operator control loop: observe traffic, detect,
//!   predict, allocate, pre-arm, release — epoch by epoch.

pub mod declare;
pub mod detect;
pub mod experiment;
pub mod lossdetect;
pub mod orchestrator;
pub mod predict;
pub mod proxy_detect;
pub mod runtime;
pub mod scheme;

pub use experiment::{run_incast, run_repeated, ExperimentConfig, IncastOutcome};
pub use scheme::{install_incast, IncastHandle, IncastSpec, Scheme};
