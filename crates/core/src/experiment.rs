//! Experiment harness: configure an incast on the §4.1 topology, run it
//! under a scheme, repeat over seeds, and summarize — the machinery behind
//! every simulation figure (Figs 2–3) and ablation.

use crate::scheme::{install_incast, IncastSpec, Scheme};
use dcsim::prelude::*;
use serde::{Deserialize, Serialize};
use trace::{derive_seed, Summary};

/// An infrastructure fault injected into an experiment run, expressed
/// relative to the incast start so one scenario applies across sweeps.
/// Translated into a concrete [`FaultPlan`] once the incast is installed
/// and the proxy agent / relevant ports are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultScenario {
    /// No faults (the default; keeps runs bit-identical to builds without
    /// fault support).
    #[default]
    None,
    /// Crash the proxy host `after` the incast starts; restore it
    /// `restore_after` the crash (`None`: stays dead). Ignored by schemes
    /// without a shared proxy agent (Baseline, Naive).
    ProxyCrash {
        /// Crash time relative to the incast start.
        after: SimDuration,
        /// Restart delay relative to the crash (`None`: no restart).
        restore_after: Option<SimDuration>,
    },
    /// Take the receiver's down-ToR link (the last hop every incast flow
    /// crosses) down `after` the incast starts, back up `up_after` the
    /// outage began.
    ReceiverLinkFlap {
        /// Outage start relative to the incast start.
        after: SimDuration,
        /// Outage duration.
        up_after: SimDuration,
    },
}

/// Whether switches trim packets to headers instead of dropping.
///
/// §4.1 enables trimming only for the Streamlined scheme; Baseline and
/// Naive run drop-tail and recover losses by RTO. `ForceOn`/`ForceOff`
/// exist for the trimming ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrimPolicy {
    /// Trimming on for Streamlined, off otherwise (the paper's setup).
    SchemeDefault,
    /// Trimming on for every scheme.
    ForceOn,
    /// Trimming off for every scheme.
    ForceOff,
}

impl TrimPolicy {
    /// Resolves the policy for a scheme.
    pub fn enabled_for(&self, scheme: Scheme) -> bool {
        match self {
            TrimPolicy::SchemeDefault => scheme == Scheme::ProxyStreamlined,
            TrimPolicy::ForceOn => true,
            TrimPolicy::ForceOff => false,
        }
    }
}

/// Full description of one experiment point.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Topology parameters (§4.1 defaults via `TwoDcParams::default()`).
    pub topo: TwoDcParams,
    /// Scheme to run.
    pub scheme: Scheme,
    /// Number of incast senders.
    pub degree: usize,
    /// Total incast bytes (split equally).
    pub total_bytes: u64,
    /// Base seed; repetition `r` runs with `derive_seed(seed, r)`.
    pub seed: u64,
    /// Streamlined proxy per-packet processing delay.
    pub streamlined_delay: SimDuration,
    /// Switch trimming policy (paper default: Streamlined only).
    pub trim: TrimPolicy,
    /// Initial-window scale (1.0 = the paper's 1 BDP).
    pub iw_scale: f64,
    /// Early NACKs at the Streamlined proxy (false = relay-only strawman).
    pub early_nack: bool,
    /// Sender ECN response.
    pub ecn_response: dcsim::protocol::dctcp::EcnResponse,
    /// Loss-detector configuration for [`Scheme::ProxyDetecting`].
    pub detector: crate::lossdetect::LossDetectorConfig,
    /// Sender transport.
    pub transport: crate::scheme::Transport,
    /// Fault scenario injected into each run (default: none).
    pub faults: FaultScenario,
    /// Sender-side proxy failover (default: off). Required for proxied
    /// incasts to survive [`FaultScenario::ProxyCrash`] without a restore.
    pub failover: Option<FailoverConfig>,
    /// Hybrid-fidelity engine (default: off — off keeps every run
    /// bit-identical to historical builds). When on, uncontended hops are
    /// advanced analytically and only the contended queues — receiver and
    /// proxy down-ToRs, plus any port that ever congests — run at packet
    /// fidelity. FCTs then agree with full fidelity statistically, not
    /// bit-exactly; see `fidelity_equivalence` for the enforced tolerance.
    pub fidelity: bool,
    /// Safety limit on simulated time (a run exceeding it is a bug or a
    /// pathological configuration — the harness panics loudly).
    pub time_limit: SimDuration,
    /// Invariant auditing for each run (default: none). When `None`, the
    /// `DCSIM_AUDIT` environment variable still turns auditing on
    /// (`strict`/`1` or `collect`) so the whole experiment surface can run
    /// audited without touching call sites.
    pub audit: Option<AuditConfig>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            topo: TwoDcParams::default(),
            scheme: Scheme::Baseline,
            degree: 4,
            total_bytes: 100_000_000, // the paper's 100 MB default
            seed: 1,
            streamlined_delay: SimDuration(420_000), // 0.42 µs
            trim: TrimPolicy::SchemeDefault,
            iw_scale: 1.0,
            early_nack: true,
            ecn_response: dcsim::protocol::dctcp::EcnResponse::default(),
            detector: crate::lossdetect::LossDetectorConfig::default(),
            transport: crate::scheme::Transport::WindowedDctcp,
            faults: FaultScenario::None,
            failover: None,
            fidelity: false,
            time_limit: SimDuration::from_secs(600),
            audit: None,
        }
    }
}

/// The audit configuration a run should use: the config's explicit choice,
/// else the `DCSIM_AUDIT` environment variable (`strict` or `1` → strict,
/// `collect` → collect), else none.
fn resolved_audit(config: &ExperimentConfig) -> Option<AuditConfig> {
    if config.audit.is_some() {
        return config.audit;
    }
    match std::env::var("DCSIM_AUDIT").ok()?.as_str() {
        "strict" | "1" => Some(AuditConfig::strict()),
        "collect" => Some(AuditConfig::collect()),
        _ => None,
    }
}

impl ExperimentConfig {
    /// Placement used by all figures: senders are the first `degree` hosts
    /// of DC 0, the proxy is the last host of DC 0 (a different rack for
    /// small degrees), and the receiver is the first host of DC 1.
    ///
    /// # Panics
    /// Panics if the degree exceeds the hosts available in DC 0 minus the
    /// proxy.
    pub fn placement(&self, topo: &Topology) -> IncastSpec {
        let dc0 = topo.hosts_in_dc(0);
        let dc1 = topo.hosts_in_dc(1);
        assert!(
            self.degree < dc0.len(),
            "degree {} needs {} hosts in DC0 (one is the proxy)",
            self.degree,
            self.degree + 1
        );
        assert!(!dc1.is_empty(), "no receiver host in DC1");
        let mut spec = IncastSpec::new(dc0[..self.degree].to_vec(), dc1[0], self.total_bytes)
            .with_proxy(*dc0.last().expect("non-empty DC0"));
        spec.streamlined_delay = self.streamlined_delay;
        spec.iw_scale = self.iw_scale;
        spec.early_nack = self.early_nack;
        spec.ecn_response = self.ecn_response;
        spec.detector = self.detector;
        spec.transport = self.transport;
        spec.failover = self.failover;
        spec
    }
}

/// Result of one simulated incast.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IncastOutcome {
    /// Incast completion time in seconds.
    pub completion_secs: f64,
    /// NACKs generated by the proxy.
    pub proxy_nacks: u64,
    /// NACKs generated by the receiver.
    pub receiver_nacks: u64,
    /// RTO expirations across all senders.
    pub rto_fires: u64,
    /// Data packets retransmitted.
    pub retransmits: u64,
    /// Multiplicative decreases applied.
    pub window_decreases: u64,
    /// Sender-side proxy failovers activated.
    pub failover_activations: u64,
    /// Sender-side failbacks to a recovered proxy.
    pub failbacks: u64,
    /// Probe packets sent through a proxy believed dead.
    pub proxy_probes: u64,
    /// Packets destroyed by injected faults.
    pub packets_lost_to_fault: u64,
    /// Largest failover latency across flows, in seconds (0 if no flow
    /// failed over): silence start to path switch.
    pub failover_latency_max_secs: f64,
    /// Events processed (simulator work, useful for perf tracking).
    pub events: u64,
    /// Events elided by the hybrid-fidelity express path (0 when the
    /// engine is off). `events + express_saved_events` is the effective
    /// packet-event count the run covered.
    pub express_saved_events: u64,
    /// How the run terminated (completion is separately guaranteed by the
    /// harness, so this distinguishes a clean `Completed` from a completed
    /// run that the collect-mode auditor flagged).
    pub terminated_reason: TerminatedReason,
}

/// Runs one seeded incast to completion.
///
/// # Panics
/// Panics if the incast does not complete within `config.time_limit` —
/// experiments are sized so that completion is guaranteed; not completing
/// indicates a bug.
pub fn run_incast(config: &ExperimentConfig, seed: u64) -> IncastOutcome {
    let params = config
        .topo
        .with_trim(config.trim.enabled_for(config.scheme));
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    if let Some(audit) = resolved_audit(config) {
        sim.set_audit(audit);
    }
    let spec = config.placement(sim.topology());
    let handle = install_incast(&mut sim, &spec, config.scheme);
    if config.fidelity {
        // Enable before `install_faults` so the plan's ports get pinned
        // hot; the incast's known congestion points are pinned explicitly.
        sim.set_fidelity(FidelityConfig::default());
        let receiver_tor = sim.topology().down_tor_port(spec.receiver);
        sim.pin_hot_port(receiver_tor);
        if let Some(proxy) = spec.proxy {
            let proxy_tor = sim.topology().down_tor_port(proxy);
            sim.pin_hot_port(proxy_tor);
        }
    }
    if let Some(plan) = fault_plan_for(config, &spec, &handle, &sim) {
        sim.install_faults(&plan)
            .unwrap_or_else(|e| panic!("invalid fault scenario {:?}: {e}", config.faults));
    }
    let limit = spec.start + config.time_limit;
    let report = sim.run(Some(limit));
    if report.stop == StopReason::EventCap {
        // The cap exists to catch livelocks (e.g. two agents ping-ponging
        // packets forever). Hitting it is always a bug, never a result.
        panic!(
            "event cap exhausted (livelock?): scheme={} degree={} bytes={} \
             events={} at {} — raise the cap only if the workload is \
             legitimately this large",
            config.scheme, config.degree, config.total_bytes, report.events, report.end_time
        );
    }
    let completion = handle.completion(sim.metrics()).unwrap_or_else(|| {
        panic!(
            "incast did not complete: scheme={} degree={} bytes={} stop={:?} at {}",
            config.scheme, config.degree, config.total_bytes, report.stop, report.end_time
        )
    });
    let m = sim.metrics();
    IncastOutcome {
        completion_secs: completion.as_secs_f64(),
        proxy_nacks: m.counter(Counter::ProxyNacks),
        receiver_nacks: m.counter(Counter::ReceiverNacks),
        rto_fires: m.counter(Counter::RtoFires),
        retransmits: m.counter(Counter::Retransmits),
        window_decreases: m.counter(Counter::WindowDecreases),
        failover_activations: m.counter(Counter::FailoverActivations),
        failbacks: m.counter(Counter::Failbacks),
        proxy_probes: m.counter(Counter::ProxyProbes),
        packets_lost_to_fault: m.counter(Counter::PacketsLostToFault),
        failover_latency_max_secs: m
            .all_failover_latencies()
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max),
        events: m.events_processed,
        express_saved_events: sim.fidelity_stats().map_or(0, |e| e.saved_events),
        terminated_reason: report.terminated_reason(),
    }
}

/// Translates the config's [`FaultScenario`] into a concrete [`FaultPlan`]
/// against the installed incast. Returns `None` when there is nothing to
/// inject — including a proxy crash under a scheme with no shared proxy
/// agent — so fault-free runs never touch the fault machinery.
fn fault_plan_for(
    config: &ExperimentConfig,
    spec: &IncastSpec,
    handle: &crate::scheme::IncastHandle,
    sim: &Simulator,
) -> Option<FaultPlan> {
    match config.faults {
        FaultScenario::None => None,
        FaultScenario::ProxyCrash {
            after,
            restore_after,
        } => {
            let agent = handle.proxy_agent?;
            let at = spec.start + after;
            Some(match restore_after {
                Some(r) => FaultPlan::new().crash_agent_window(agent, at, at + r),
                None => FaultPlan::new().crash_agent(agent, at),
            })
        }
        FaultScenario::ReceiverLinkFlap { after, up_after } => {
            let port = sim.topology().down_tor_port(spec.receiver);
            let down = spec.start + after;
            Some(FaultPlan::new().link_down_window(port, down, down + up_after))
        }
    }
}

/// Runs `runs` repetitions with derived seeds and summarizes the incast
/// completion times — the paper's "run each setup 5 times and report the
/// average, minimum and maximum".
pub fn run_repeated(config: &ExperimentConfig, runs: usize) -> (Summary, Vec<IncastOutcome>) {
    assert!(runs > 0, "need at least one run");
    let outcomes: Vec<IncastOutcome> = (0..runs)
        .map(|r| run_incast(config, derive_seed(config.seed, r as u64)))
        .collect();
    let summary = Summary::of(
        &outcomes
            .iter()
            .map(|o| o.completion_secs)
            .collect::<Vec<_>>(),
    );
    (summary, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(scheme: Scheme) -> ExperimentConfig {
        ExperimentConfig {
            topo: TwoDcParams::small_test(),
            scheme,
            degree: 3,
            total_bytes: 2_000_000,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn run_incast_completes_for_all_schemes() {
        for scheme in Scheme::ALL {
            let out = run_incast(&fast_config(scheme), 1);
            assert!(out.completion_secs > 0.0, "{scheme}: {out:?}");
            assert!(out.completion_secs < 1.0, "{scheme}: {out:?}");
        }
    }

    #[test]
    fn run_incast_is_deterministic() {
        let cfg = fast_config(Scheme::ProxyStreamlined);
        let a = run_incast(&cfg, 99);
        let b = run_incast(&cfg, 99);
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.retransmits, b.retransmits);
    }

    #[test]
    fn repeated_runs_summarize() {
        let (summary, outcomes) = run_repeated(&fast_config(Scheme::Baseline), 3);
        assert_eq!(summary.count, 3);
        assert_eq!(outcomes.len(), 3);
        assert!(summary.min <= summary.mean && summary.mean <= summary.max);
    }

    #[test]
    fn hybrid_fidelity_completes_deterministically_for_all_schemes() {
        for scheme in Scheme::ALL {
            let mut cfg = fast_config(scheme);
            cfg.fidelity = true;
            let a = run_incast(&cfg, 13);
            let b = run_incast(&cfg, 13);
            assert!(a.completion_secs > 0.0, "{scheme}: {a:?}");
            assert!(
                a.express_saved_events > 0,
                "{scheme}: express path never engaged"
            );
            assert_eq!(a.completion_secs, b.completion_secs, "{scheme}");
            assert_eq!(a.events, b.events, "{scheme}");
            assert_eq!(a.express_saved_events, b.express_saved_events, "{scheme}");
        }
    }

    #[test]
    fn fidelity_off_reports_zero_saved_events() {
        let out = run_incast(&fast_config(Scheme::Baseline), 1);
        assert_eq!(out.express_saved_events, 0);
    }

    #[test]
    fn proxy_crash_with_failover_completes() {
        for scheme in [Scheme::ProxyStreamlined, Scheme::ProxyDetecting] {
            let mut cfg = fast_config(scheme);
            cfg.faults = FaultScenario::ProxyCrash {
                after: SimDuration::from_micros(50),
                restore_after: None,
            };
            cfg.failover = Some(FailoverConfig::default());
            let out = run_incast(&cfg, 7);
            // `completion` returning Some means zero permanently-stalled
            // flows: every sender finished despite the dead proxy.
            assert!(out.completion_secs > 0.0, "{scheme}: {out:?}");
            assert!(out.failover_activations > 0, "{scheme}: {out:?}");
            assert!(out.failover_latency_max_secs > 0.0, "{scheme}: {out:?}");
        }
    }

    #[test]
    #[should_panic(expected = "did not complete")]
    fn proxy_crash_without_failover_stalls() {
        let mut cfg = fast_config(Scheme::ProxyStreamlined);
        cfg.faults = FaultScenario::ProxyCrash {
            after: SimDuration::from_micros(50),
            restore_after: None,
        };
        cfg.time_limit = SimDuration::from_millis(50);
        run_incast(&cfg, 7);
    }

    #[test]
    fn proxy_crash_ignored_without_proxy_agent() {
        let mut cfg = fast_config(Scheme::Baseline);
        cfg.faults = FaultScenario::ProxyCrash {
            after: SimDuration::from_micros(50),
            restore_after: None,
        };
        cfg.failover = Some(FailoverConfig::default());
        let out = run_incast(&cfg, 1);
        let base = run_incast(&fast_config(Scheme::Baseline), 1);
        // Baseline has no shared proxy agent: the scenario is a no-op and
        // the run stays bit-identical to a fault-free one.
        assert_eq!(out.completion_secs, base.completion_secs);
        assert_eq!(out.events, base.events);
        assert_eq!(out.failover_activations, 0);
        assert_eq!(out.packets_lost_to_fault, 0);
    }

    #[test]
    fn receiver_link_flap_completes() {
        let mut cfg = fast_config(Scheme::ProxyStreamlined);
        cfg.faults = FaultScenario::ReceiverLinkFlap {
            after: SimDuration::from_micros(100),
            up_after: SimDuration::from_micros(500),
        };
        let out = run_incast(&cfg, 3);
        assert!(out.completion_secs > 0.0, "{out:?}");
        assert!(out.packets_lost_to_fault > 0, "{out:?}");
    }

    #[test]
    fn placement_respects_topology() {
        let cfg = fast_config(Scheme::ProxyNaive);
        let topo = two_dc_leaf_spine(&cfg.topo);
        let spec = cfg.placement(&topo);
        assert_eq!(spec.senders.len(), 3);
        assert_eq!(topo.host_dc(spec.receiver), Some(1));
        assert_eq!(topo.host_dc(spec.proxy.unwrap()), Some(0));
        assert!(!spec.senders.contains(&spec.proxy.unwrap()));
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn oversized_degree_panics() {
        let mut cfg = fast_config(Scheme::Baseline);
        cfg.degree = 8; // small_test has 8 hosts per DC; proxy needs one.
        let topo = two_dc_leaf_spine(&cfg.topo);
        cfg.placement(&topo);
    }
}
