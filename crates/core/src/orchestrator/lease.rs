//! Epoch-stamped proxy leases.
//!
//! A sharded control plane cannot hand out permanent assignments: a shard
//! that crashes takes its assignment table with it, and a permanent
//! assignment nobody remembers is a leak (the proxy's capacity is gone
//! until a human notices). Leases bound that damage in sim time — an
//! assignment the holder stops renewing becomes reclaimable the moment it
//! expires, no matter which shard granted it or whether that shard still
//! exists.
//!
//! Every lease is stamped with the granting shard's epoch (bumped on each
//! restart), so a lease surviving from before a crash is distinguishable
//! from one granted after. Ledger entries flow through
//! [`dcsim::audit::LeaseLedger`], the audit-layer balance
//! `granted == released + expired + reclaimed + active` that the chaos
//! fuzzer checks after every operation.

use dcsim::audit::LeaseLedger;
use dcsim::det::DetMap;
use dcsim::packet::HostId;
use dcsim::time::SimTime;

/// One proxy assignment with an expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The proxy host the incast was steered to.
    pub proxy: HostId,
    /// Granting shard's epoch at grant (or re-grant) time.
    pub epoch: u64,
    /// When the lease was granted.
    pub granted_at: SimTime,
    /// When it lapses unless renewed.
    pub expires_at: SimTime,
    /// Load the assignment pins on the proxy.
    pub bytes: u64,
}

/// Result of a renewal attempt against the sharded control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenewOutcome {
    /// The owning shard extended the lease in place.
    Renewed,
    /// The owner is gone; a sibling (or the restored owner under a new
    /// epoch) re-granted the lease. The placement is unchanged but the
    /// holder should treat it as fresh.
    Reclaimed,
    /// The owner is gone and no live shard suspects it yet — gossip has
    /// not converged. The lease still counts as active (draining); the
    /// holder should retry next epoch.
    Pending,
    /// The lease ran out its term before the renewal arrived. The holder
    /// must request a fresh selection.
    Expired,
    /// No shard has any record of this id.
    Unknown,
}

/// One shard's lease table. All mutations feed the shared ledger so the
/// global balance holds no matter how leases migrate between shards.
#[derive(Debug, Clone, Default)]
pub struct LeaseTable {
    leases: DetMap<u64, Lease>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live leases in this table.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// True when no leases are held.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// The lease for `id`, if this table holds it.
    pub fn get(&self, id: u64) -> Option<&Lease> {
        self.leases.get(&id)
    }

    /// Records a fresh grant.
    ///
    /// # Panics
    /// Panics if `id` already holds a lease here — the caller must route a
    /// duplicate select through the same "already has a proxy" guard the
    /// other selectors use.
    pub fn grant(&mut self, id: u64, lease: Lease, ledger: &mut LeaseLedger) {
        let prior = self.leases.insert(id, lease);
        assert!(prior.is_none(), "incast {id} already has a lease");
        ledger.granted += 1;
        ledger.active += 1;
    }

    /// Re-homes a lease reclaimed from a crashed shard: the old grant is
    /// retired as `reclaimed` and a fresh grant (same proxy, the adopting
    /// shard's epoch) takes its place.
    pub fn adopt(&mut self, id: u64, lease: Lease, ledger: &mut LeaseLedger) {
        ledger.reclaimed += 1;
        ledger.active -= 1;
        self.grant(id, lease, ledger);
    }

    /// Extends `id`'s lease to `expires_at`; false if not held here.
    pub fn extend(&mut self, id: u64, expires_at: SimTime) -> bool {
        match self.leases.get_mut(&id) {
            Some(lease) => {
                lease.expires_at = expires_at;
                true
            }
            None => false,
        }
    }

    /// Releases `id`'s lease, returning it; `None` if not held here.
    pub fn release(&mut self, id: u64, ledger: &mut LeaseLedger) -> Option<Lease> {
        let lease = self.leases.remove(&id)?;
        ledger.released += 1;
        ledger.active -= 1;
        Some(lease)
    }

    /// Removes and returns every lease due at or before `now`, marking
    /// them expired in the ledger.
    pub fn expire_due(&mut self, now: SimTime, ledger: &mut LeaseLedger) -> Vec<(u64, Lease)> {
        let due: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.expires_at <= now)
            .map(|(&id, _)| id)
            .collect();
        due.into_iter()
            .map(|id| {
                let lease = self.leases.remove(&id).expect("collected above");
                ledger.expired += 1;
                ledger.active -= 1;
                (id, lease)
            })
            .collect()
    }

    /// Drains the whole table (shard crash): the leases stay `active` in
    /// the ledger — they are not gone, merely orphaned — and the caller
    /// parks them in its draining set.
    pub fn drain_all(&mut self) -> Vec<(u64, Lease)> {
        let ids: Vec<u64> = self.leases.iter().map(|(&id, _)| id).collect();
        ids.into_iter()
            .map(|id| (id, self.leases.remove(&id).expect("collected above")))
            .collect()
    }

    /// Iterates over held leases in deterministic (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Lease)> {
        self.leases.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease(expires_at: u64) -> Lease {
        Lease {
            proxy: HostId(3),
            epoch: 1,
            granted_at: SimTime(0),
            expires_at: SimTime(expires_at),
            bytes: 100,
        }
    }

    #[test]
    fn grant_release_balances() {
        let mut table = LeaseTable::new();
        let mut ledger = LeaseLedger::default();
        table.grant(7, lease(1000), &mut ledger);
        assert!(ledger.balanced());
        assert_eq!(ledger.active, 1);
        assert!(table.release(7, &mut ledger).is_some());
        assert!(ledger.balanced());
        assert_eq!(ledger.active, 0);
        assert_eq!(ledger.released, 1);
        assert!(table.release(7, &mut ledger).is_none(), "idempotent");
        assert!(ledger.balanced());
    }

    #[test]
    fn expiry_is_time_driven() {
        let mut table = LeaseTable::new();
        let mut ledger = LeaseLedger::default();
        table.grant(1, lease(1000), &mut ledger);
        table.grant(2, lease(2000), &mut ledger);
        assert!(table.expire_due(SimTime(999), &mut ledger).is_empty());
        let due = table.expire_due(SimTime(1000), &mut ledger);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 1);
        assert_eq!(ledger.expired, 1);
        assert_eq!(ledger.active, 1);
        assert!(ledger.balanced());
        assert!(table.extend(2, SimTime(5000)));
        assert!(table.expire_due(SimTime(2000), &mut ledger).is_empty());
    }

    #[test]
    fn drain_keeps_leases_active_and_adopt_reclaims() {
        let mut table = LeaseTable::new();
        let mut ledger = LeaseLedger::default();
        table.grant(1, lease(1000), &mut ledger);
        let orphans = table.drain_all();
        assert_eq!(orphans.len(), 1);
        assert_eq!(ledger.active, 1, "draining is not terminal");
        assert!(ledger.balanced());
        let mut sibling = LeaseTable::new();
        sibling.adopt(1, orphans[0].1, &mut ledger);
        assert!(ledger.balanced());
        assert_eq!(ledger.reclaimed, 1);
        assert_eq!(ledger.granted, 2, "reclaim re-grants");
        assert_eq!(ledger.active, 1);
    }

    #[test]
    #[should_panic(expected = "already has a lease")]
    fn double_grant_panics() {
        let mut table = LeaseTable::new();
        let mut ledger = LeaseLedger::default();
        table.grant(1, lease(1000), &mut ledger);
        table.grant(1, lease(1000), &mut ledger);
    }
}
