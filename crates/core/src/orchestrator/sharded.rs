//! The sharded, crash-tolerant incast control plane.
//!
//! [`ShardedOrchestrator`] splits the orchestrator's assignment state into
//! shards keyed by victim (receiver) host, so one shard crash orphans only
//! the incasts homed on it. Assignments are [`Lease`]s that expire in sim
//! time unless renewed; shards monitor each other with heartbeat-driven
//! health [`gossip`](super::gossip) and degrade gracefully along a ladder:
//!
//! 1. **Home shard alive** — grant and renew there; the fast path is the
//!    same least-loaded scan the [`GlobalOrchestrator`] uses.
//! 2. **Home shard dead, gossip converged** — the ring successor suspects
//!    the corpse and serves in its place (takeover); orphaned leases are
//!    adopted one by one as their holders renew.
//! 3. **Home shard dead, gossip not yet converged** — the successor cannot
//!    distinguish a crash from slow gossip, so the request falls back to
//!    decentralized power-of-k probing rather than risking a split brain.
//!    Renewals of orphaned leases return [`RenewOutcome::Pending`] until
//!    suspicion firms up.
//! 4. **Majority of shards dead** — the control plane stops pretending:
//!    every request takes the decentralized path until shards restore.
//!
//! A crashed shard's leases move to a *draining* set: still `active` in
//! the global [`LeaseLedger`], but their load and membership view are
//! lost, which is precisely the stale-placement hazard the fuzzer hunts —
//! a fresh grant landing on a proxy that also appears among draining
//! leases is counted as a [`ShardedStats::stale_conflicts`]. The ledger
//! balance `granted == released + expired + reclaimed + active` holds
//! after every operation, and `active` drains to zero at quiescence.

use std::collections::VecDeque;

use super::gossip::{HealthView, Heartbeat};
use super::lease::{Lease, LeaseTable, RenewOutcome};
use super::{eligible, Assignment, DecentralizedSelector, IncastRequest, ProxySelector};
use dcsim::audit::LeaseLedger;
use dcsim::det::{DetMap, DetSet};
use dcsim::packet::HostId;
use dcsim::time::{SimDuration, SimTime};
use serde::Serialize;

/// Timing and sizing knobs of the sharded control plane.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards the assignment state is split into.
    pub shards: u32,
    /// Lease term; a lease not renewed within this window expires.
    pub lease_ttl: SimDuration,
    /// Heartbeat (and piggybacked gossip) period per shard.
    pub heartbeat_every: SimDuration,
    /// Silence horizon after which a shard is suspected dead. Must exceed
    /// `heartbeat_every + gossip_delay` or healthy shards get suspected.
    pub suspect_after: SimDuration,
    /// One-way delivery delay of a heartbeat.
    pub gossip_delay: SimDuration,
    /// Probes per trial of the decentralized fallback.
    pub fallback_probes: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            lease_ttl: SimDuration::from_millis(5),
            heartbeat_every: SimDuration::from_millis(1),
            suspect_after: SimDuration::from_millis(3),
            gossip_delay: SimDuration::from_micros(200),
            fallback_probes: 2,
        }
    }
}

/// Observable behavior counters of the degradation ladder.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ShardedStats {
    /// Grants served by a ring successor on behalf of a dead home shard.
    pub takeovers: u64,
    /// Grants routed to the decentralized fallback (ladder rungs 3–4).
    pub fallback_selections: u64,
    /// Fresh grants that landed on a proxy also named by a draining lease
    /// (a placement conflict with state a dead shard lost track of).
    pub stale_conflicts: u64,
    /// Orphaned leases adopted by a live shard on renewal.
    pub reclaims: u64,
    /// Leases that ran out their term without renewal.
    pub expirations: u64,
    /// Releases that named no active assignment.
    pub release_unknown: u64,
}

#[derive(Debug, Clone)]
struct Shard {
    /// Bumped on every restart; stamps the leases this shard grants.
    epoch: u64,
    /// Heartbeats sent since (re)start; cycles the extra gossip partner.
    beats: u64,
    alive: bool,
    table: LeaseTable,
    view: HealthView,
    next_heartbeat: SimTime,
}

/// Sharded control plane; see the module docs for the design.
#[derive(Debug, Clone)]
pub struct ShardedOrchestrator {
    candidates: Vec<HostId>,
    /// Load per candidate across all shard-granted leases (the fallback
    /// keeps its own books).
    load: DetMap<HostId, u64>,
    unhealthy: Vec<HostId>,
    shards: Vec<Shard>,
    /// Orphaned leases of crashed shards: still active in the ledger,
    /// owner recorded for adoption. Load and view are lost with the crash.
    draining: DetMap<u64, (u32, Lease)>,
    /// Ids whose lease expired; lets renew/release distinguish "expired"
    /// from "never existed".
    expired: DetSet<u64>,
    fallback: DecentralizedSelector,
    /// Ids served by the fallback instead of a shard lease.
    fallback_ids: DetSet<u64>,
    in_flight: VecDeque<Heartbeat>,
    ledger: LeaseLedger,
    stats: ShardedStats,
    config: ShardedConfig,
    now: SimTime,
}

impl ShardedOrchestrator {
    /// Creates a sharded control plane over the given candidate set.
    ///
    /// # Panics
    /// Panics on an empty candidate set or zero shards.
    pub fn new(candidates: Vec<HostId>, config: ShardedConfig, seed: u64) -> Self {
        assert!(!candidates.is_empty(), "no proxy candidates");
        assert!(config.shards > 0, "need at least one shard");
        let load = candidates.iter().map(|&c| (c, 0)).collect();
        let shards = (0..config.shards)
            .map(|_| Shard {
                epoch: 1,
                beats: 0,
                alive: true,
                table: LeaseTable::new(),
                view: HealthView::fresh(config.shards, SimTime::ZERO),
                next_heartbeat: SimTime::ZERO + config.heartbeat_every,
            })
            .collect();
        ShardedOrchestrator {
            fallback: DecentralizedSelector::new(
                candidates.clone(),
                config.fallback_probes,
                seed ^ 0xFA11_BACC,
            ),
            candidates,
            load,
            unhealthy: Vec::new(),
            shards,
            draining: DetMap::new(),
            expired: DetSet::new(),
            fallback_ids: DetSet::new(),
            in_flight: VecDeque::new(),
            ledger: LeaseLedger::default(),
            stats: ShardedStats::default(),
            config,
            now: SimTime::ZERO,
        }
    }

    /// The shard a victim's incasts are homed on.
    pub fn shard_of(&self, receiver: HostId) -> u32 {
        receiver.0 % self.config.shards
    }

    /// The global lease ledger (audited by the chaos fuzzer).
    pub fn ledger(&self) -> &LeaseLedger {
        &self.ledger
    }

    /// Degradation-ladder counters.
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            release_unknown: self.stats.release_unknown,
            ..self.stats
        }
    }

    /// Number of shards currently alive.
    pub fn alive_shards(&self) -> u32 {
        self.shards.iter().filter(|s| s.alive).count() as u32
    }

    /// Leases orphaned by crashed shards and not yet adopted or expired.
    pub fn draining_leases(&self) -> usize {
        self.draining.len()
    }

    /// True when `id` is currently served by the decentralized fallback
    /// (such claims carry no lease term). Lets a harness model expiry.
    pub fn serves_via_fallback(&self, id: u64) -> bool {
        self.fallback_ids.contains(&id)
    }

    /// The shards a given live shard currently suspects dead.
    pub fn suspects_of(&self, shard: u32) -> Vec<u32> {
        let s = &self.shards[shard as usize];
        (0..self.config.shards)
            .filter(|&other| {
                other != shard && s.view.suspects(other, self.now, self.config.suspect_after)
            })
            .collect()
    }

    /// True when every live shard suspects exactly the dead shards — the
    /// gossip-converged steady state.
    pub fn health_converged(&self) -> bool {
        let dead: Vec<u32> = (0..self.config.shards)
            .filter(|&s| !self.shards[s as usize].alive)
            .collect();
        (0..self.config.shards)
            .filter(|&s| self.shards[s as usize].alive)
            .all(|s| self.suspects_of(s) == dead)
    }

    fn majority_dead(&self) -> bool {
        (self.alive_shards() as usize) * 2 < self.shards.len()
    }

    /// First live shard on the ring after `from` (exclusive).
    fn successor(&self, from: u32) -> Option<u32> {
        let n = self.config.shards;
        (1..n)
            .map(|step| (from + step) % n)
            .find(|&s| self.shards[s as usize].alive)
    }

    /// Crashes a shard: its lease table is orphaned into the draining set
    /// (the ledger keeps them active), its load view and health view die
    /// with it.
    pub fn crash_shard(&mut self, shard: u32) {
        let idx = shard as usize;
        if !self.shards[idx].alive {
            return;
        }
        self.shards[idx].alive = false;
        for (id, lease) in self.shards[idx].table.drain_all() {
            let l = self.load.get_mut(&lease.proxy).expect("known candidate");
            *l = l.saturating_sub(lease.bytes);
            self.draining.insert(id, (shard, lease));
        }
    }

    /// Restores a crashed shard under a fresh epoch with a conservative
    /// (suspect-nobody) health view. Its orphaned leases stay draining
    /// until their holders renew (adoption) or the term runs out.
    pub fn restore_shard(&mut self, shard: u32, now: SimTime) {
        let idx = shard as usize;
        if self.shards[idx].alive {
            return;
        }
        self.now = self.now.max(now);
        let shards = self.config.shards;
        let heartbeat = self.config.heartbeat_every;
        let s = &mut self.shards[idx];
        s.alive = true;
        s.epoch += 1;
        s.view = HealthView::fresh(shards, now);
        s.next_heartbeat = now + heartbeat;
    }

    fn deliver_due_gossip(&mut self, now: SimTime) {
        while let Some(hb) = self.in_flight.front() {
            if hb.deliver_at > now {
                break;
            }
            let hb = self.in_flight.pop_front().expect("peeked");
            let to = &mut self.shards[hb.to as usize];
            if !to.alive {
                continue; // Delivered to a corpse: dropped on the floor.
            }
            to.view.observe(hb.from, hb.sent_at);
            for (shard, at) in hb.view {
                to.view.observe(shard, at);
            }
        }
    }

    fn expire_due(&mut self, now: SimTime) {
        for idx in 0..self.shards.len() {
            if !self.shards[idx].alive {
                continue;
            }
            for (id, lease) in self.shards[idx].table.expire_due(now, &mut self.ledger) {
                let l = self.load.get_mut(&lease.proxy).expect("known candidate");
                *l = l.saturating_sub(lease.bytes);
                self.expired.insert(id);
                self.stats.expirations += 1;
            }
        }
        let due: Vec<u64> = self
            .draining
            .iter()
            .filter(|(_, (_, lease))| lease.expires_at <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            self.draining.remove(&id);
            self.ledger.expired += 1;
            self.ledger.active -= 1;
            self.expired.insert(id);
            self.stats.expirations += 1;
        }
    }

    fn send_heartbeats(&mut self, now: SimTime) {
        let n = self.config.shards;
        for idx in 0..self.shards.len() {
            if !self.shards[idx].alive {
                continue;
            }
            // A shard far behind (e.g. the clock jumped past many periods)
            // collapses the backlog into one beat rather than spamming.
            if now
                >= self.shards[idx].next_heartbeat + SimDuration(self.config.heartbeat_every.0 * 8)
            {
                self.shards[idx].next_heartbeat = now;
            }
            while self.shards[idx].next_heartbeat <= now {
                let sent_at = self.shards[idx].next_heartbeat;
                let from = idx as u32;
                self.shards[idx].view.observe(from, sent_at);
                let view = self.shards[idx].view.snapshot();
                // Both ring neighbors (so views flow in either direction
                // even when one neighbor is dead) plus one extra partner
                // cycling deterministically through the remaining shards —
                // any live pair exchanges a direct heartbeat at least once
                // every `n` periods, which bounds convergence time even
                // when crashes sever the ring.
                let successor = (from + 1) % n;
                let predecessor = (from + n - 1) % n;
                let mut targets = vec![successor];
                if !targets.contains(&predecessor) {
                    targets.push(predecessor);
                }
                let others: Vec<u32> = (0..n)
                    .filter(|&s| s != from && !targets.contains(&s))
                    .collect();
                if !others.is_empty() {
                    targets.push(others[(self.shards[idx].beats % others.len() as u64) as usize]);
                }
                self.shards[idx].beats += 1;
                for to in targets {
                    if to == from {
                        continue; // Single-shard plane: nobody to gossip with.
                    }
                    self.in_flight.push_back(Heartbeat {
                        from,
                        to,
                        sent_at,
                        deliver_at: sent_at + self.config.gossip_delay,
                        view: view.clone(),
                    });
                }
                self.shards[idx].next_heartbeat = sent_at + self.config.heartbeat_every;
            }
        }
    }

    fn holds(&self, id: u64) -> bool {
        self.fallback_ids.contains(&id)
            || self.draining.contains_key(&id)
            || self.shards.iter().any(|s| s.table.get(id).is_some())
    }

    /// True when a draining lease pins `proxy` — a fresh grant there may
    /// contend with a placement the dead owner can no longer coordinate.
    fn conflicts_with_draining(&self, proxy: HostId) -> bool {
        self.draining
            .iter()
            .any(|(_, (_, lease))| lease.proxy == proxy)
    }

    fn grant_at_shard(
        &mut self,
        shard: u32,
        request: &IncastRequest,
        now: SimTime,
    ) -> Option<Assignment> {
        let proxy = *self
            .candidates
            .iter()
            .filter(|&&c| eligible(c, request) && !self.unhealthy.contains(&c))
            .min_by_key(|&&c| (self.load[&c], c.0))?;
        let s = &mut self.shards[shard as usize];
        let lease = Lease {
            proxy,
            epoch: s.epoch,
            granted_at: now,
            expires_at: now + self.config.lease_ttl,
            bytes: request.expected_bytes,
        };
        s.table.grant(request.id, lease, &mut self.ledger);
        *self.load.get_mut(&proxy).expect("known candidate") += request.expected_bytes;
        if self.conflicts_with_draining(proxy) {
            self.stats.stale_conflicts += 1;
        }
        Some(Assignment { proxy, trials: 1 })
    }

    fn fallback_select(&mut self, request: &IncastRequest) -> Option<Assignment> {
        let assignment = self.fallback.select(request)?;
        self.fallback_ids.insert(request.id);
        self.ledger.granted += 1;
        self.ledger.active += 1;
        self.stats.fallback_selections += 1;
        if self.conflicts_with_draining(assignment.proxy) {
            self.stats.stale_conflicts += 1;
        }
        Some(assignment)
    }

    fn adopt(&mut self, id: u64, adopter: u32, now: SimTime) {
        let (_, lease) = self.draining.remove(&id).expect("caller checked");
        let s = &mut self.shards[adopter as usize];
        let adopted = Lease {
            epoch: s.epoch,
            granted_at: now,
            expires_at: now + self.config.lease_ttl,
            ..lease
        };
        s.table.adopt(id, adopted, &mut self.ledger);
        *self.load.get_mut(&lease.proxy).expect("known candidate") += lease.bytes;
        self.stats.reclaims += 1;
    }
}

impl ProxySelector for ShardedOrchestrator {
    fn select(&mut self, request: &IncastRequest) -> Option<Assignment> {
        assert!(
            !self.holds(request.id),
            "incast {} already has a proxy",
            request.id
        );
        let now = self.now;
        if self.majority_dead() {
            return self.fallback_select(request);
        }
        let home = self.shard_of(request.receiver);
        if self.shards[home as usize].alive {
            return self.grant_at_shard(home, request, now);
        }
        match self.successor(home) {
            Some(successor)
                if self.shards[successor as usize].view.suspects(
                    home,
                    now,
                    self.config.suspect_after,
                ) =>
            {
                let assignment = self.grant_at_shard(successor, request, now);
                if assignment.is_some() {
                    self.stats.takeovers += 1;
                }
                assignment
            }
            // Gossip has not converged on the crash (or no shard is left):
            // rather than grant from a shard that may be wrong, degrade to
            // the coordination-free path.
            _ => self.fallback_select(request),
        }
    }

    fn release(&mut self, id: u64) {
        if self.fallback_ids.remove(&id) {
            self.fallback.release(id);
            self.ledger.released += 1;
            self.ledger.active -= 1;
            return;
        }
        for idx in 0..self.shards.len() {
            if !self.shards[idx].alive {
                continue;
            }
            if let Some(lease) = self.shards[idx].table.release(id, &mut self.ledger) {
                let l = self.load.get_mut(&lease.proxy).expect("known candidate");
                *l = l.saturating_sub(lease.bytes);
                return;
            }
        }
        if self.draining.remove(&id).is_some() {
            // The holder finished before anyone adopted the orphan; load
            // was already written off at the crash.
            self.ledger.released += 1;
            self.ledger.active -= 1;
            return;
        }
        self.stats.release_unknown += 1;
    }

    fn load_of(&self, proxy: HostId) -> u64 {
        self.load.get(&proxy).copied().unwrap_or(0) + self.fallback.load_of(proxy)
    }

    fn report_unhealthy(&mut self, proxy: HostId) {
        if !self.unhealthy.contains(&proxy) {
            self.unhealthy.push(proxy);
        }
    }

    fn report_healthy(&mut self, proxy: HostId) {
        self.unhealthy.retain(|&p| p != proxy);
    }

    fn advance_to(&mut self, now: SimTime) {
        let now = now.max(self.now);
        self.now = now;
        self.deliver_due_gossip(now);
        self.expire_due(now);
        self.send_heartbeats(now);
    }

    fn renew(&mut self, id: u64, now: SimTime) -> RenewOutcome {
        let now = now.max(self.now);
        if self.fallback_ids.contains(&id) {
            return RenewOutcome::Renewed; // Fallback claims carry no term.
        }
        let expires_at = now + self.config.lease_ttl;
        for idx in 0..self.shards.len() {
            if self.shards[idx].alive && self.shards[idx].table.extend(id, expires_at) {
                return RenewOutcome::Renewed;
            }
        }
        if let Some(&(owner, _)) = self.draining.get(&id) {
            if self.shards[owner as usize].alive {
                // The owner restored (new epoch) and re-learns the lease
                // from its holder's renewal.
                self.adopt(id, owner, now);
                return RenewOutcome::Reclaimed;
            }
            return match self.successor(owner) {
                Some(successor)
                    if self.shards[successor as usize].view.suspects(
                        owner,
                        now,
                        self.config.suspect_after,
                    ) =>
                {
                    self.adopt(id, successor, now);
                    RenewOutcome::Reclaimed
                }
                _ => RenewOutcome::Pending,
            };
        }
        if self.expired.contains(&id) {
            return RenewOutcome::Expired;
        }
        RenewOutcome::Unknown
    }

    fn release_unknown(&self) -> u64 {
        self.stats.release_unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    fn request(id: u64, receiver: u32) -> IncastRequest {
        IncastRequest {
            id,
            senders: vec![HostId(100), HostId(101)],
            receiver: HostId(receiver),
            expected_bytes: 100,
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn plane(shards: u32) -> ShardedOrchestrator {
        ShardedOrchestrator::new(
            hosts(8),
            ShardedConfig {
                shards,
                ..ShardedConfig::default()
            },
            42,
        )
    }

    #[test]
    fn grants_home_and_releases_clean() {
        let mut orch = plane(4);
        let a = orch.select(&request(1, 201)).unwrap();
        assert_eq!(orch.shard_of(HostId(201)), 1);
        assert_eq!(orch.load_of(a.proxy), 100);
        assert!(orch.ledger().balanced());
        orch.release(1);
        assert_eq!(orch.load_of(a.proxy), 0);
        assert_eq!(orch.ledger().active, 0);
        assert!(orch.ledger().balanced());
    }

    #[test]
    fn unrenewed_leases_expire() {
        let mut orch = plane(4);
        orch.select(&request(1, 200)).unwrap();
        orch.advance_to(t(10_000)); // Past the 5 ms TTL.
        assert_eq!(orch.ledger().expired, 1);
        assert_eq!(orch.ledger().active, 0);
        assert!(orch.ledger().balanced());
        assert_eq!(orch.renew(1, t(10_001)), RenewOutcome::Expired);
        orch.release(1); // The holder's late release is audited, not lost.
        assert_eq!(orch.release_unknown(), 1);
    }

    #[test]
    fn renewal_extends_the_term() {
        let mut orch = plane(4);
        orch.select(&request(1, 200)).unwrap();
        for step in 1..=4u64 {
            orch.advance_to(t(step * 2_000));
            assert_eq!(orch.renew(1, t(step * 2_000)), RenewOutcome::Renewed);
        }
        // 8 ms elapsed, well past the original 5 ms term.
        assert_eq!(orch.ledger().expired, 0);
        assert_eq!(orch.ledger().active, 1);
    }

    #[test]
    fn crash_orphans_then_successor_reclaims_after_gossip() {
        let mut orch = plane(4);
        let a = orch.select(&request(1, 200)).unwrap(); // Home shard 0.
        orch.crash_shard(0);
        assert_eq!(orch.draining_leases(), 1);
        assert_eq!(orch.load_of(a.proxy), 0, "crash loses the load view");
        assert!(orch.ledger().balanced());
        // Before gossip converges the renewal parks.
        assert_eq!(orch.renew(1, t(100)), RenewOutcome::Pending);
        // Let silence accumulate past suspect_after (3 ms) with heartbeats
        // flowing among the survivors — but renew within the 5 ms term:
        // parked (Pending) renewals do not stop the TTL clock.
        for step in 1..=4u64 {
            orch.advance_to(t(step * 1_000));
        }
        assert_eq!(orch.renew(1, t(4_000)), RenewOutcome::Reclaimed);
        assert_eq!(orch.draining_leases(), 0);
        assert_eq!(orch.ledger().reclaimed, 1);
        assert_eq!(orch.load_of(a.proxy), 100, "adoption restores the load");
        assert!(orch.ledger().balanced());
        orch.release(1);
        assert_eq!(orch.ledger().active, 0);
        assert!(orch.ledger().balanced());
    }

    #[test]
    fn dead_home_with_slow_gossip_falls_back() {
        let mut orch = plane(4);
        orch.crash_shard(0);
        // Immediately after the crash nobody suspects shard 0 yet.
        let a = orch.select(&request(1, 200)).unwrap();
        assert_eq!(orch.stats().fallback_selections, 1);
        assert_eq!(orch.stats().takeovers, 0);
        assert!(orch.ledger().balanced());
        orch.release(1);
        assert_eq!(orch.ledger().active, 0);
        let _ = a;
    }

    #[test]
    fn dead_home_with_converged_gossip_takes_over() {
        let mut orch = plane(4);
        orch.crash_shard(0);
        for step in 1..=8u64 {
            orch.advance_to(t(step * 1_000));
        }
        assert!(orch.health_converged());
        orch.select(&request(1, 200)).unwrap();
        assert_eq!(orch.stats().takeovers, 1);
        assert_eq!(orch.stats().fallback_selections, 0);
    }

    #[test]
    fn majority_dead_degrades_to_decentralized() {
        let mut orch = plane(4);
        orch.crash_shard(0);
        orch.crash_shard(1);
        orch.crash_shard(2);
        orch.select(&request(1, 203)).unwrap(); // Home shard 3 is alive...
        assert_eq!(
            orch.stats().fallback_selections,
            1,
            "...but a minority control plane must not pretend to coordinate"
        );
        orch.release(1);
        assert!(orch.ledger().balanced());
        assert_eq!(orch.ledger().active, 0);
    }

    #[test]
    fn restored_owner_reclaims_its_own_orphans() {
        let mut orch = plane(4);
        orch.select(&request(1, 200)).unwrap();
        orch.crash_shard(0);
        orch.restore_shard(0, t(500));
        assert_eq!(orch.renew(1, t(600)), RenewOutcome::Reclaimed);
        assert_eq!(orch.ledger().reclaimed, 1);
        assert!(orch.ledger().balanced());
        // The re-granted lease is stamped with the post-restart epoch.
        let lease = orch.shards[0].table.get(1).unwrap();
        assert_eq!(lease.epoch, 2);
    }

    #[test]
    fn stale_draining_placement_flags_conflicts() {
        let mut orch = ShardedOrchestrator::new(
            vec![HostId(0)], // One candidate: collisions guaranteed.
            ShardedConfig {
                shards: 2,
                ..ShardedConfig::default()
            },
            7,
        );
        orch.select(&request(1, 200)).unwrap();
        orch.crash_shard(0);
        for step in 1..=8u64 {
            orch.advance_to(t(step * 1_000));
        }
        // Shard 0's lease on host 0 is draining (and by now expired);
        // regrant before expiry would conflict. Re-check within the term:
        let mut orch2 = ShardedOrchestrator::new(
            vec![HostId(0)],
            ShardedConfig {
                shards: 2,
                suspect_after: SimDuration::from_micros(100),
                ..ShardedConfig::default()
            },
            7,
        );
        orch2.select(&request(1, 200)).unwrap();
        orch2.crash_shard(0);
        for step in 1..=4u64 {
            orch2.advance_to(t(step * 500));
        }
        orch2.select(&request(2, 201)).unwrap();
        assert_eq!(orch2.stats().stale_conflicts, 1);
        let _ = orch;
    }

    #[test]
    fn gossip_converges_after_restore() {
        let mut orch = plane(4);
        orch.crash_shard(2);
        for step in 1..=8u64 {
            orch.advance_to(t(step * 1_000));
        }
        assert!(orch.health_converged());
        orch.restore_shard(2, t(8_000));
        for step in 9..=20u64 {
            orch.advance_to(t(step * 1_000));
        }
        assert!(orch.health_converged(), "no shard suspected after heal");
        assert_eq!(orch.suspects_of(0), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "already has a proxy")]
    fn double_select_panics() {
        let mut orch = plane(2);
        orch.select(&request(1, 200)).unwrap();
        orch.select(&request(1, 200)).unwrap();
    }
}
