//! Proxy orchestration across concurrent incasts (§5, Future work #3).
//!
//! "The proxy needs to be selected quickly and avoid contention with other
//! incasts. It can be selected either by a global orchestrator, which
//! requires frequent updates on proxy status, or in a decentralized manner
//! with repeated trials by individual incast."
//!
//! Three designs are implemented behind one trait:
//!
//! * [`GlobalOrchestrator`] — a central allocator with a complete load
//!   view; picks the least-loaded eligible proxy, O(candidates) per
//!   request, zero conflicts by construction.
//! * [`DecentralizedSelector`] — each incast probes `k` random candidates
//!   (power-of-k-choices) and claims the least loaded; claims can conflict
//!   under stale views, counted and retried.
//! * [`sharded::ShardedOrchestrator`] — the crash-tolerant middle ground:
//!   orchestrator state is sharded by victim ToR, assignments are
//!   epoch-stamped [`lease::Lease`]s that expire in sim time unless
//!   renewed, shards exchange [`gossip`] health views piggybacked on
//!   heartbeats, and shard failure degrades gracefully (sibling takeover
//!   when gossip has converged, per-request decentralized fallback when it
//!   has not, wholesale decentralized fallback when a majority of shards
//!   is dead). A global [`dcsim::audit::LeaseLedger`] balances
//!   `granted == released + expired + reclaimed + active` at every step.

pub mod gossip;
pub mod lease;
pub mod sharded;

pub use lease::{Lease, RenewOutcome};
pub use sharded::{ShardedConfig, ShardedOrchestrator, ShardedStats};

use dcsim::det::DetMap;
use dcsim::packet::HostId;
use dcsim::time::SimTime;
use serde::Serialize;
use trace::SplitMix64;

/// A request to allocate a proxy for one incast.
#[derive(Debug, Clone)]
pub struct IncastRequest {
    /// Caller-chosen identifier (unique per active incast).
    pub id: u64,
    /// The incast senders; the proxy must not be one of them.
    pub senders: Vec<HostId>,
    /// The remote receiver (informational; never eligible).
    pub receiver: HostId,
    /// Expected total bytes — the load the proxy will carry.
    pub expected_bytes: u64,
}

/// Outcome of a selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Assignment {
    /// The chosen proxy host.
    pub proxy: HostId,
    /// Probe/claim attempts it took (1 for the global orchestrator).
    pub trials: u32,
}

/// Common interface of both orchestration designs.
pub trait ProxySelector {
    /// Allocates a proxy for `request`, or `None` if no candidate is
    /// eligible.
    fn select(&mut self, request: &IncastRequest) -> Option<Assignment>;

    /// Releases the allocation of a finished incast. Unknown ids are
    /// ignored (release is idempotent).
    fn release(&mut self, id: u64);

    /// Current load (bytes of active incasts) on a proxy candidate.
    fn load_of(&self, proxy: HostId) -> u64;

    /// Marks a proxy as unhealthy (e.g. a sender reported failover away
    /// from it); unhealthy proxies are skipped by future selections until
    /// [`ProxySelector::report_healthy`] clears them. Default: no-op, for
    /// selectors without health tracking.
    fn report_unhealthy(&mut self, _proxy: HostId) {}

    /// Clears an unhealthy mark (e.g. a sender failed back after the proxy
    /// recovered). Default: no-op.
    fn report_healthy(&mut self, _proxy: HostId) {}

    /// Advances the selector's control-plane clock: delivers due gossip,
    /// expires overdue leases, emits heartbeats. Default: no-op, for
    /// selectors without a clock (their assignments never expire).
    fn advance_to(&mut self, _now: SimTime) {}

    /// Renews the lease of a still-running incast. Selectors without
    /// leases hold assignments forever, so the default renewal always
    /// succeeds in place.
    fn renew(&mut self, _id: u64, _now: SimTime) -> RenewOutcome {
        RenewOutcome::Renewed
    }

    /// Number of [`ProxySelector::release`] calls that named an id with no
    /// active assignment — double releases, releases after lease expiry,
    /// or plain bugs. Audited by the control-plane fuzzer: an unexpected
    /// count means an assignment leaked somewhere.
    fn release_unknown(&self) -> u64 {
        0
    }
}

fn eligible(candidate: HostId, request: &IncastRequest) -> bool {
    candidate != request.receiver && !request.senders.contains(&candidate)
}

/// Central allocator with a complete, always-fresh load view.
#[derive(Debug, Clone)]
pub struct GlobalOrchestrator {
    /// Candidate proxy hosts (all in the sending datacenter).
    candidates: Vec<HostId>,
    /// Load per candidate (bytes across active incasts).
    load: DetMap<HostId, u64>,
    /// Active assignment per incast id.
    active: DetMap<u64, (HostId, u64)>,
    /// Candidates reported unhealthy; excluded until reported healthy.
    unhealthy: Vec<HostId>,
    /// Releases that named no active assignment (see
    /// [`ProxySelector::release_unknown`]).
    release_unknown: u64,
}

impl GlobalOrchestrator {
    /// Creates an orchestrator over the given candidate set.
    ///
    /// # Panics
    /// Panics on an empty candidate set or duplicates.
    pub fn new(candidates: Vec<HostId>) -> Self {
        assert!(!candidates.is_empty(), "no proxy candidates");
        let mut dedup = candidates.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), candidates.len(), "duplicate candidates");
        let load = candidates.iter().map(|&c| (c, 0)).collect();
        GlobalOrchestrator {
            candidates,
            load,
            active: DetMap::new(),
            unhealthy: Vec::new(),
            release_unknown: 0,
        }
    }

    /// Number of incasts currently assigned.
    pub fn active_incasts(&self) -> usize {
        self.active.len()
    }

    /// Candidates currently marked unhealthy.
    pub fn unhealthy_count(&self) -> usize {
        self.unhealthy.len()
    }
}

impl ProxySelector for GlobalOrchestrator {
    fn select(&mut self, request: &IncastRequest) -> Option<Assignment> {
        assert!(
            !self.active.contains_key(&request.id),
            "incast {} already has a proxy",
            request.id
        );
        let best = self
            .candidates
            .iter()
            .filter(|&&c| eligible(c, request) && !self.unhealthy.contains(&c))
            .min_by_key(|&&c| (self.load[&c], c.0))?;
        let proxy = *best;
        *self.load.get_mut(&proxy).expect("known candidate") += request.expected_bytes;
        self.active
            .insert(request.id, (proxy, request.expected_bytes));
        Some(Assignment { proxy, trials: 1 })
    }

    fn release(&mut self, id: u64) {
        if let Some((proxy, bytes)) = self.active.remove(&id) {
            let l = self.load.get_mut(&proxy).expect("known candidate");
            *l = l.saturating_sub(bytes);
        } else {
            self.release_unknown += 1;
        }
    }

    fn load_of(&self, proxy: HostId) -> u64 {
        self.load.get(&proxy).copied().unwrap_or(0)
    }

    fn release_unknown(&self) -> u64 {
        self.release_unknown
    }

    fn report_unhealthy(&mut self, proxy: HostId) {
        if !self.unhealthy.contains(&proxy) {
            self.unhealthy.push(proxy);
        }
    }

    fn report_healthy(&mut self, proxy: HostId) {
        self.unhealthy.retain(|&p| p != proxy);
    }
}

/// Decentralized selection: probe `k` random candidates, claim the least
/// loaded. A claim conflicts when another incast claimed the same proxy
/// since the probe (modelled by a configurable conflict probability that
/// stands in for update-propagation staleness); conflicts retry with fresh
/// probes, which is the communication overhead the paper warns about.
#[derive(Debug, Clone)]
pub struct DecentralizedSelector {
    candidates: Vec<HostId>,
    load: DetMap<HostId, u64>,
    active: DetMap<u64, (HostId, u64)>,
    /// Number of candidates probed per trial (power of k choices).
    probes_per_trial: usize,
    /// Probability that a concurrent claim races ours.
    conflict_probability: f64,
    rng: SplitMix64,
    /// Total conflicts observed (for the orchestration ablation).
    pub conflicts: u64,
    /// Releases that named no active assignment.
    release_unknown: u64,
}

impl DecentralizedSelector {
    /// Creates a selector probing `probes_per_trial` candidates per trial.
    ///
    /// # Panics
    /// Panics on an empty candidate set or `probes_per_trial == 0`.
    pub fn new(candidates: Vec<HostId>, probes_per_trial: usize, seed: u64) -> Self {
        assert!(!candidates.is_empty(), "no proxy candidates");
        assert!(probes_per_trial > 0, "need at least one probe per trial");
        let load = candidates.iter().map(|&c| (c, 0)).collect();
        DecentralizedSelector {
            candidates,
            load,
            active: DetMap::new(),
            probes_per_trial,
            conflict_probability: 0.0,
            rng: SplitMix64::new(seed),
            conflicts: 0,
            release_unknown: 0,
        }
    }

    /// Sets the probability that a claim races a concurrent incast's claim
    /// and must retry (0.0 ..= 1.0).
    pub fn with_conflict_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.conflict_probability = p;
        self
    }

    fn probe(&mut self, request: &IncastRequest) -> Option<HostId> {
        let eligible: Vec<HostId> = self
            .candidates
            .iter()
            .copied()
            .filter(|&c| eligible(c, request))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let mut best: Option<HostId> = None;
        for _ in 0..self.probes_per_trial.min(eligible.len()) {
            let pick = eligible[self.rng.next_bounded(eligible.len() as u64) as usize];
            match best {
                None => best = Some(pick),
                Some(b) if self.load[&pick] < self.load[&b] => best = Some(pick),
                _ => {}
            }
        }
        best
    }
}

impl ProxySelector for DecentralizedSelector {
    fn select(&mut self, request: &IncastRequest) -> Option<Assignment> {
        assert!(
            !self.active.contains_key(&request.id),
            "incast {} already has a proxy",
            request.id
        );
        const MAX_TRIALS: u32 = 16;
        for trial in 1..=MAX_TRIALS {
            let proxy = self.probe(request)?;
            // A conflicting concurrent claim forces a retry (except on the
            // final trial, where we accept the contention — liveness over
            // optimality, as a real deployment would).
            if trial < MAX_TRIALS && self.rng.next_f64() < self.conflict_probability {
                self.conflicts += 1;
                continue;
            }
            *self.load.get_mut(&proxy).expect("known candidate") += request.expected_bytes;
            self.active
                .insert(request.id, (proxy, request.expected_bytes));
            return Some(Assignment {
                proxy,
                trials: trial,
            });
        }
        unreachable!("loop always returns by the final trial");
    }

    fn release(&mut self, id: u64) {
        if let Some((proxy, bytes)) = self.active.remove(&id) {
            let l = self.load.get_mut(&proxy).expect("known candidate");
            *l = l.saturating_sub(bytes);
        } else {
            self.release_unknown += 1;
        }
    }

    fn load_of(&self, proxy: HostId) -> u64 {
        self.load.get(&proxy).copied().unwrap_or(0)
    }

    fn release_unknown(&self) -> u64 {
        self.release_unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    fn request(id: u64, bytes: u64) -> IncastRequest {
        IncastRequest {
            id,
            senders: vec![HostId(100), HostId(101)],
            receiver: HostId(200),
            expected_bytes: bytes,
        }
    }

    #[test]
    fn global_picks_least_loaded() {
        let mut orch = GlobalOrchestrator::new(hosts(3));
        let a = orch.select(&request(1, 100)).unwrap();
        let b = orch.select(&request(2, 100)).unwrap();
        let c = orch.select(&request(3, 100)).unwrap();
        // Three equal incasts spread over three proxies.
        let mut proxies = vec![a.proxy, b.proxy, c.proxy];
        proxies.sort_unstable();
        proxies.dedup();
        assert_eq!(proxies.len(), 3, "no contention with spare capacity");
        assert_eq!(a.trials, 1);
    }

    #[test]
    fn global_balances_unequal_loads() {
        let mut orch = GlobalOrchestrator::new(hosts(2));
        orch.select(&request(1, 1000)).unwrap();
        let small = orch.select(&request(2, 10)).unwrap();
        let next = orch.select(&request(3, 10)).unwrap();
        // The third goes where the small one went (10 < 1000).
        assert_eq!(next.proxy, small.proxy);
    }

    #[test]
    fn global_release_frees_load() {
        let mut orch = GlobalOrchestrator::new(hosts(1));
        let a = orch.select(&request(1, 500)).unwrap();
        assert_eq!(orch.load_of(a.proxy), 500);
        orch.release(1);
        assert_eq!(orch.load_of(a.proxy), 0);
        assert_eq!(orch.active_incasts(), 0);
        assert_eq!(orch.release_unknown(), 0);
        orch.release(1); // Idempotent, but audited.
        assert_eq!(orch.load_of(a.proxy), 0);
        assert_eq!(orch.release_unknown(), 1);
    }

    #[test]
    fn unknown_releases_are_counted_not_ignored() {
        let mut orch = GlobalOrchestrator::new(hosts(2));
        orch.release(99); // Never assigned.
        assert_eq!(orch.release_unknown(), 1);
        let mut sel = DecentralizedSelector::new(hosts(4), 2, 7);
        sel.select(&request(1, 10)).unwrap();
        sel.release(1);
        sel.release(1); // Double release.
        assert_eq!(sel.release_unknown(), 1);
    }

    #[test]
    fn global_excludes_senders_and_receiver() {
        let mut orch = GlobalOrchestrator::new(vec![HostId(100), HostId(200), HostId(5)]);
        let a = orch.select(&request(1, 1)).unwrap();
        assert_eq!(a.proxy, HostId(5), "senders/receiver ineligible");
    }

    #[test]
    fn global_none_when_no_eligible() {
        let mut orch = GlobalOrchestrator::new(vec![HostId(100)]);
        assert!(orch.select(&request(1, 1)).is_none());
    }

    #[test]
    #[should_panic(expected = "already has a proxy")]
    fn global_double_select_panics() {
        let mut orch = GlobalOrchestrator::new(hosts(2));
        orch.select(&request(1, 1)).unwrap();
        orch.select(&request(1, 1)).unwrap();
    }

    #[test]
    fn global_skips_unhealthy_until_recovered() {
        let mut orch = GlobalOrchestrator::new(hosts(2));
        orch.report_unhealthy(HostId(0));
        orch.report_unhealthy(HostId(0)); // Idempotent.
        assert_eq!(orch.unhealthy_count(), 1);
        let a = orch.select(&request(1, 1)).unwrap();
        assert_eq!(a.proxy, HostId(1), "unhealthy candidate skipped");
        orch.report_unhealthy(HostId(1));
        assert!(orch.select(&request(2, 1)).is_none(), "all unhealthy");
        orch.report_healthy(HostId(0));
        let b = orch.select(&request(3, 1)).unwrap();
        assert_eq!(b.proxy, HostId(0), "recovered candidate eligible again");
    }

    #[test]
    fn decentralized_selects_and_releases() {
        let mut sel = DecentralizedSelector::new(hosts(8), 2, 7);
        let a = sel.select(&request(1, 100)).unwrap();
        assert!(a.proxy.0 < 8);
        assert_eq!(sel.load_of(a.proxy), 100);
        sel.release(1);
        assert_eq!(sel.load_of(a.proxy), 0);
    }

    #[test]
    fn decentralized_conflicts_force_retries() {
        let mut sel = DecentralizedSelector::new(hosts(8), 2, 7).with_conflict_probability(0.5);
        let mut total_trials = 0;
        for id in 0..100 {
            let a = sel.select(&request(id, 10)).unwrap();
            total_trials += a.trials;
        }
        assert!(sel.conflicts > 0, "p=0.5 must cause conflicts");
        // Expected trials per select ≈ 1/(1-p) = 2.
        assert!(total_trials > 120, "trials={total_trials}");
        assert_eq!(sel.conflicts as u32, total_trials - 100);
    }

    #[test]
    fn decentralized_always_terminates_under_certain_conflict() {
        let mut sel = DecentralizedSelector::new(hosts(4), 2, 3).with_conflict_probability(1.0);
        let a = sel.select(&request(1, 10)).unwrap();
        assert_eq!(a.trials, 16, "accepts contention on the final trial");
    }

    #[test]
    fn decentralized_spreads_load_with_two_choices() {
        let mut sel = DecentralizedSelector::new(hosts(16), 2, 11);
        for id in 0..160 {
            sel.select(&request(id, 1)).unwrap();
        }
        let max_load = (0..16).map(|i| sel.load_of(HostId(i))).max().unwrap();
        // Power-of-two-choices keeps the max far below worst-case 160.
        assert!(max_load <= 20, "max_load={max_load}");
    }

    #[test]
    #[should_panic(expected = "no proxy candidates")]
    fn empty_candidates_panics() {
        GlobalOrchestrator::new(vec![]);
    }
}
