//! Deterministic health gossip between orchestrator shards.
//!
//! Shards learn about each other exclusively through heartbeats: each live
//! shard periodically sends its whole health view (a map from shard id to
//! the latest sim time it is known to have been alive) to its ring
//! successor plus one seed-derived extra partner. Views merge by taking
//! the per-shard maximum, so information only ever moves forward in time
//! and convergence needs no coordination. A shard whose freshest known
//! timestamp is older than `suspect_after` is *suspected* — the failure
//! detector that gates lease takeover in
//! [`super::sharded::ShardedOrchestrator`].
//!
//! Everything is sim-clocked and deterministic: messages travel with a
//! constant configured delay, are delivered in send order, and no wall
//! clock or ambient randomness is consulted anywhere.

use dcsim::det::DetMap;
use dcsim::time::{SimDuration, SimTime};

/// What one shard believes about the liveness of all shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthView {
    /// Freshest sim time each shard is known to have been alive.
    last_heard: DetMap<u32, SimTime>,
}

impl HealthView {
    /// A view that heard from every one of `shards` at `now` — the
    /// conservative starting point of a fresh or restarted shard (suspect
    /// nobody until silence accumulates).
    pub fn fresh(shards: u32, now: SimTime) -> Self {
        HealthView {
            last_heard: (0..shards).map(|s| (s, now)).collect(),
        }
    }

    /// Records direct evidence that `shard` was alive at `at`.
    pub fn observe(&mut self, shard: u32, at: SimTime) {
        let entry = self.last_heard.entry(shard).or_insert(at);
        *entry = (*entry).max(at);
    }

    /// Merges a peer's view: per-shard maximum of the two.
    pub fn merge(&mut self, other: &HealthView) {
        for (&shard, &at) in other.last_heard.iter() {
            self.observe(shard, at);
        }
    }

    /// Freshest known liveness timestamp for `shard`.
    pub fn last_heard(&self, shard: u32) -> Option<SimTime> {
        self.last_heard.get(&shard).copied()
    }

    /// True when this view has heard nothing from `shard` for longer than
    /// `suspect_after`.
    pub fn suspects(&self, shard: u32, now: SimTime, suspect_after: SimDuration) -> bool {
        match self.last_heard.get(&shard) {
            Some(&at) => now > at + suspect_after,
            None => true,
        }
    }

    /// Snapshot of the view as (shard, last_heard) pairs in shard order —
    /// the payload a heartbeat carries.
    pub fn snapshot(&self) -> Vec<(u32, SimTime)> {
        self.last_heard.iter().map(|(&s, &t)| (s, t)).collect()
    }
}

/// One heartbeat in flight between shards.
#[derive(Debug, Clone)]
pub struct Heartbeat {
    /// Sending shard.
    pub from: u32,
    /// Receiving shard.
    pub to: u32,
    /// Send time (doubles as the sender's liveness proof).
    pub sent_at: SimTime,
    /// Delivery time (`sent_at` + the configured gossip delay).
    pub deliver_at: SimTime,
    /// The sender's full health view, piggybacked.
    pub view: Vec<(u32, SimTime)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn merge_takes_the_maximum() {
        let mut a = HealthView::fresh(3, t(0));
        let mut b = HealthView::fresh(3, t(0));
        a.observe(1, t(50));
        b.observe(1, t(20));
        b.observe(2, t(70));
        a.merge(&b);
        assert_eq!(a.last_heard(1), Some(t(50)), "merge never rewinds");
        assert_eq!(a.last_heard(2), Some(t(70)));
    }

    #[test]
    fn silence_grows_into_suspicion() {
        let mut view = HealthView::fresh(2, t(0));
        let horizon = SimDuration::from_micros(100);
        assert!(!view.suspects(1, t(100), horizon), "exactly at horizon");
        assert!(view.suspects(1, t(101), horizon));
        view.observe(1, t(90));
        assert!(!view.suspects(1, t(101), horizon), "fresh evidence clears");
    }

    #[test]
    fn unknown_shards_are_suspect() {
        let view = HealthView::default();
        assert!(view.suspects(0, t(0), SimDuration::from_micros(1)));
    }
}
