//! Pattern-aware incast detection (§6, "Proxying incast through
//! pattern-aware rerouting").
//!
//! For third-party applications without declarations, the cloud operator
//! can watch per-destination traffic and exploit periodicity: "ML training
//! is one such example, where synchronization phases follow regular
//! patterns." Two detectors compose:
//!
//! * [`IncastSignatureDetector`] — instantaneous: flags a destination once
//!   enough distinct sources send enough aggregate bytes within one
//!   observation bin (the many-to-one signature).
//! * [`PeriodicityDetector`] — longitudinal: autocorrelation over a sliding
//!   window of per-bin byte counts finds the dominant period, so the
//!   operator can *pre-arm* the proxy route before the next burst.

use dcsim::det::DetMap;
use dcsim::packet::HostId;
use serde::Serialize;

/// Configuration of the instantaneous incast-signature detector.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SignatureConfig {
    /// Minimum distinct sources within a bin to call it an incast.
    pub min_degree: usize,
    /// Minimum aggregate bytes within a bin.
    pub min_bytes: u64,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig {
            min_degree: 4,
            min_bytes: 10_000_000,
        }
    }
}

/// An instantaneous detection verdict for one destination and bin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct IncastSignature {
    /// The destination under incast.
    pub destination: HostId,
    /// Distinct sources observed in the bin.
    pub degree: usize,
    /// Aggregate bytes observed in the bin.
    pub bytes: u64,
}

/// Detects the many-to-one signature within an observation bin.
#[derive(Debug, Default)]
pub struct IncastSignatureDetector {
    config: SignatureConfig,
    /// Per-destination accumulation for the current bin.
    bins: DetMap<HostId, DetMap<HostId, u64>>,
}

impl IncastSignatureDetector {
    /// Creates a detector.
    pub fn new(config: SignatureConfig) -> Self {
        IncastSignatureDetector {
            config,
            bins: DetMap::new(),
        }
    }

    /// Records traffic from `src` to `dst` within the current bin.
    pub fn record(&mut self, src: HostId, dst: HostId, bytes: u64) {
        *self.bins.entry(dst).or_default().entry(src).or_insert(0) += bytes;
    }

    /// Closes the current bin: returns every destination matching the
    /// incast signature (in destination order — `DetMap::drain` yields key
    /// order, no sort needed) and resets the bin state.
    pub fn end_bin(&mut self) -> Vec<IncastSignature> {
        self.bins
            .drain()
            .filter_map(|(dst, sources)| {
                let degree = sources.len();
                let bytes: u64 = sources.values().sum();
                (degree >= self.config.min_degree && bytes >= self.config.min_bytes).then_some(
                    IncastSignature {
                        destination: dst,
                        degree,
                        bytes,
                    },
                )
            })
            .collect()
    }
}

/// Result of a periodicity analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Periodicity {
    /// Dominant period, in bins.
    pub period_bins: usize,
    /// Autocorrelation coefficient at that lag (0..=1; higher = stronger).
    pub confidence: f64,
}

/// Sliding-window autocorrelation detector over per-bin byte counts.
#[derive(Debug)]
pub struct PeriodicityDetector {
    window: Vec<f64>,
    capacity: usize,
}

impl PeriodicityDetector {
    /// Creates a detector keeping the last `window_bins` observations.
    ///
    /// # Panics
    /// Panics if the window is shorter than 8 bins (too little signal).
    pub fn new(window_bins: usize) -> Self {
        assert!(window_bins >= 8, "window too short for periodicity");
        PeriodicityDetector {
            window: Vec::with_capacity(window_bins),
            capacity: window_bins,
        }
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Appends one bin's byte count (oldest observation evicted at
    /// capacity).
    pub fn push(&mut self, bytes: u64) {
        if self.window.len() == self.capacity {
            self.window.remove(0);
        }
        self.window.push(bytes as f64);
    }

    /// Analyzes the window: returns the dominant period if its normalized
    /// autocorrelation exceeds `min_confidence`.
    pub fn dominant_period(&self, min_confidence: f64) -> Option<Periodicity> {
        let n = self.window.len();
        if n < 8 {
            return None;
        }
        let mean = self.window.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = self.window.iter().map(|x| x - mean).collect();
        let var: f64 = centered.iter().map(|x| x * x).sum();
        if var == 0.0 {
            return None; // Flat series: no periodicity.
        }
        let mut best: Option<Periodicity> = None;
        for lag in 2..=(n / 2) {
            let corr: f64 = centered[lag..]
                .iter()
                .zip(&centered[..n - lag])
                .map(|(a, b)| a * b)
                .sum::<f64>()
                / var;
            if corr > best.map_or(min_confidence, |b| b.confidence) {
                best = Some(Periodicity {
                    period_bins: lag,
                    confidence: corr,
                });
            }
        }
        best
    }

    /// Predicts the next burst onset, in bins from now, given the last
    /// burst happened `bins_since_burst` bins ago and the detected period.
    pub fn next_burst_in(&self, period: &Periodicity, bins_since_burst: usize) -> usize {
        let p = period.period_bins;
        (p - (bins_since_burst % p)) % p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_requires_degree_and_volume() {
        let mut d = IncastSignatureDetector::new(SignatureConfig {
            min_degree: 3,
            min_bytes: 1000,
        });
        // Two sources only: not an incast.
        d.record(HostId(1), HostId(9), 600);
        d.record(HostId(2), HostId(9), 600);
        assert!(d.end_bin().is_empty());
        // Three sources, enough bytes: incast.
        for s in 1..=3 {
            d.record(HostId(s), HostId(9), 400);
        }
        let out = d.end_bin();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].destination, HostId(9));
        assert_eq!(out[0].degree, 3);
        assert_eq!(out[0].bytes, 1200);
    }

    #[test]
    fn signature_volume_threshold() {
        let mut d = IncastSignatureDetector::new(SignatureConfig {
            min_degree: 2,
            min_bytes: 1_000_000,
        });
        d.record(HostId(1), HostId(9), 100);
        d.record(HostId(2), HostId(9), 100);
        assert!(d.end_bin().is_empty(), "volume below threshold");
    }

    #[test]
    fn signature_bins_reset() {
        let mut d = IncastSignatureDetector::new(SignatureConfig {
            min_degree: 2,
            min_bytes: 100,
        });
        d.record(HostId(1), HostId(9), 100);
        d.end_bin();
        d.record(HostId(2), HostId(9), 100);
        assert!(d.end_bin().is_empty(), "sources must not leak across bins");
    }

    #[test]
    fn signature_multiple_destinations_sorted() {
        let mut d = IncastSignatureDetector::new(SignatureConfig {
            min_degree: 2,
            min_bytes: 10,
        });
        for dst in [HostId(5), HostId(3)] {
            d.record(HostId(1), dst, 10);
            d.record(HostId(2), dst, 10);
        }
        let out = d.end_bin();
        assert_eq!(out.len(), 2);
        assert!(out[0].destination < out[1].destination);
    }

    fn periodic_series(period: usize, cycles: usize) -> PeriodicityDetector {
        let mut d = PeriodicityDetector::new(period * cycles);
        for i in 0..period * cycles {
            // Burst of 100 MB in the first bin of every period, quiet rest.
            d.push(if i % period == 0 { 100_000_000 } else { 1_000 });
        }
        d
    }

    #[test]
    fn detects_ml_training_style_period() {
        let d = periodic_series(10, 6);
        let p = d.dominant_period(0.5).expect("period found");
        assert_eq!(p.period_bins, 10);
        assert!(p.confidence > 0.8, "{p:?}");
    }

    #[test]
    fn flat_traffic_has_no_period() {
        let mut d = PeriodicityDetector::new(64);
        for _ in 0..64 {
            d.push(5000);
        }
        assert!(d.dominant_period(0.3).is_none());
    }

    #[test]
    fn noise_has_low_confidence() {
        let mut rng = trace::SplitMix64::new(9);
        let mut d = PeriodicityDetector::new(128);
        for _ in 0..128 {
            d.push(rng.next_bounded(1_000_000));
        }
        // Random series may have spurious weak correlations but nothing
        // near a clean periodic signal.
        if let Some(p) = d.dominant_period(0.5) {
            panic!("noise should not show strong periodicity: {p:?}");
        }
    }

    #[test]
    fn window_slides() {
        let mut d = PeriodicityDetector::new(8);
        for i in 0..100 {
            d.push(i);
        }
        assert_eq!(d.len(), 8);
    }

    #[test]
    fn next_burst_prediction() {
        let d = periodic_series(10, 6);
        let p = d.dominant_period(0.5).unwrap();
        assert_eq!(d.next_burst_in(&p, 3), 7);
        assert_eq!(d.next_burst_in(&p, 10), 0, "burst due right now");
        assert_eq!(d.next_burst_in(&p, 13), 7);
    }

    #[test]
    #[should_panic(expected = "window too short")]
    fn tiny_window_panics() {
        PeriodicityDetector::new(4);
    }
}
