//! The three evaluation schemes of §4.1 and their wiring into the
//! simulator.
//!
//! * **Baseline** — every sender opens a direct end-to-end connection to
//!   the remote receiver.
//! * **Proxy (Naive)** — two connections per sender: sender→proxy
//!   (intra-DC) terminated by a full receiver at the proxy, and
//!   proxy→receiver (long-haul) fed packet-by-packet by the ingress side.
//! * **Proxy (Streamlined)** — one end-to-end connection per sender routed
//!   through the proxy, which converts trimmed headers into immediate
//!   NACKs and forwards everything else.

use dcsim::flows::cc_for_path;
use dcsim::prelude::*;
use dcsim::protocol::{RateCcConfig, RateSender};
use serde::{Deserialize, Serialize};

/// Which transport the incast senders run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// The paper's window-based DCTCP-like sender (§4.1).
    WindowedDctcp,
    /// A rate-based, loss-resilient sender (BBR-flavoured; §5 FW#1 points
    /// at BBR's loss resilience as a relevant interaction). Applies to
    /// the incast senders; the Naive scheme's proxy→receiver relay leg
    /// stays windowed regardless, since it is grant-clocked by the
    /// ingress side rather than self-clocked.
    RateBased,
}

/// Which §4.1 scheme an incast runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Direct sender→receiver connections.
    Baseline,
    /// Split connections through a full relay at the proxy.
    ProxyNaive,
    /// Trim/NACK forwarding proxy on the end-to-end path.
    ProxyStreamlined,
    /// Streamlined variant for drop-tail networks: the proxy infers loss
    /// from sequence gaps instead of trimmed headers (§5 Future Work #1;
    /// see [`crate::proxy_detect::DetectingProxy`]). Not part of the
    /// paper's evaluation — exercised by `ablation_detector_proxy`.
    ProxyDetecting,
}

impl Scheme {
    /// The paper's three evaluated schemes, in presentation order.
    pub const ALL: [Scheme; 3] = [
        Scheme::Baseline,
        Scheme::ProxyNaive,
        Scheme::ProxyStreamlined,
    ];

    /// The paper's schemes plus the FW#1 detector-based proxy.
    pub const EXTENDED: [Scheme; 4] = [
        Scheme::Baseline,
        Scheme::ProxyNaive,
        Scheme::ProxyStreamlined,
        Scheme::ProxyDetecting,
    ];

    /// True for the two proxy schemes.
    pub fn uses_proxy(&self) -> bool {
        !matches!(self, Scheme::Baseline)
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::ProxyNaive => "Proxy (Naive)",
            Scheme::ProxyStreamlined => "Proxy (Streamlined)",
            Scheme::ProxyDetecting => "Proxy (Detecting)",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One incast to install: `senders` transmit `total_bytes` (split equally)
/// to `receiver`, optionally via `proxy`.
#[derive(Debug, Clone)]
pub struct IncastSpec {
    /// The incast senders (same datacenter for proxy schemes).
    pub senders: Vec<HostId>,
    /// The remote receiver.
    pub receiver: HostId,
    /// The proxy host (required by proxy schemes; must not be a sender).
    pub proxy: Option<HostId>,
    /// Total incast bytes, split equally across senders (remainder spread
    /// over the first senders, as equal as possible).
    pub total_bytes: u64,
    /// When the senders start (simultaneously, as in the paper).
    pub start: SimTime,
    /// Per-packet processing delay of the Streamlined proxy datapath
    /// (Fig. 5a measures a median of 0.42 µs on the paper's prototype).
    pub streamlined_delay: SimDuration,
    /// Scale factor on every sender's initial window (1.0 = the paper's
    /// 1 BDP; swept by the `ablation_initwnd` study of §2's first-RTT
    /// overload argument).
    pub iw_scale: f64,
    /// When false, the Streamlined proxy merely relays (no early NACKs) —
    /// Insight #2's strawman, swept by `ablation_relay_only`.
    pub early_nack: bool,
    /// ECN response of every sender (default: true DCTCP α; the
    /// `ablation_cc_response` study compares against plain halving).
    pub ecn_response: dcsim::protocol::dctcp::EcnResponse,
    /// Loss-detector configuration for the [`Scheme::ProxyDetecting`]
    /// variant (ignored by the other schemes).
    pub detector: crate::lossdetect::LossDetectorConfig,
    /// Sender transport (the paper's windowed DCTCP-like by default).
    pub transport: Transport,
    /// When set, proxied windowed senders monitor proxy health and fall
    /// back to the direct path if the proxy goes silent (see
    /// [`dcsim::protocol::FailoverConfig`]). `None` (the default) leaves
    /// runs bit-identical to builds without failover support. Only the
    /// end-to-end proxy schemes (Streamlined, Detecting) use it: Baseline
    /// has no proxy, and the Naive scheme's split connections terminate at
    /// the proxy, so there is no direct path to fall back to.
    pub failover: Option<FailoverConfig>,
}

impl IncastSpec {
    /// An incast with the paper's defaults (simultaneous start, 0.42 µs
    /// streamlined proxy processing delay).
    pub fn new(senders: Vec<HostId>, receiver: HostId, total_bytes: u64) -> Self {
        IncastSpec {
            senders,
            receiver,
            proxy: None,
            total_bytes,
            start: SimTime::ZERO,
            streamlined_delay: SimDuration(420_000), // 0.42 µs
            iw_scale: 1.0,
            early_nack: true,
            ecn_response: dcsim::protocol::dctcp::EcnResponse::default(),
            detector: crate::lossdetect::LossDetectorConfig::default(),
            transport: Transport::WindowedDctcp,
            failover: None,
        }
    }

    /// Sets the proxy host.
    pub fn with_proxy(mut self, proxy: HostId) -> Self {
        self.proxy = Some(proxy);
        self
    }

    /// Enables sender-side proxy failover with the given config.
    pub fn with_failover(mut self, cfg: FailoverConfig) -> Self {
        self.failover = Some(cfg);
        self
    }

    /// Sets the start time.
    pub fn with_start(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Bytes assigned to sender `i` (equal split, remainder to the first
    /// senders).
    pub fn bytes_for_sender(&self, i: usize) -> u64 {
        let n = self.senders.len() as u64;
        let base = self.total_bytes / n;
        let extra = self.total_bytes % n;
        base + u64::from((i as u64) < extra)
    }
}

/// Handles to an installed incast.
#[derive(Debug, Clone)]
pub struct IncastHandle {
    /// The scheme the incast was installed under.
    pub scheme: Scheme,
    /// Flows whose collective completion defines the incast completion
    /// time (the receiver-side flows).
    pub watch_flows: Vec<FlowId>,
    /// Every flow created for the incast (includes the sender→proxy legs
    /// of the Naive scheme).
    pub all_flows: Vec<FlowId>,
    /// Start time of the incast.
    pub start: SimTime,
    /// The shared proxy agent, for fault injection (crash scenarios).
    /// `None` for Baseline (no proxy) and Naive (per-flow relay agents
    /// rather than one shared middlebox).
    pub proxy_agent: Option<AgentId>,
}

impl IncastHandle {
    /// Incast completion time: latest receiver-side completion minus the
    /// start time. `None` while any watched flow is unfinished.
    pub fn completion(&self, metrics: &SimMetrics) -> Option<SimDuration> {
        metrics
            .completion_of_all(&self.watch_flows)
            .map(|t| t.since(self.start))
    }
}

fn validate(spec: &IncastSpec, scheme: Scheme, topo: &Topology) {
    assert!(!spec.senders.is_empty(), "incast needs at least one sender");
    assert!(spec.total_bytes > 0, "incast needs at least one byte");
    assert!(
        !spec.senders.contains(&spec.receiver),
        "receiver cannot be a sender"
    );
    let mut dedup = spec.senders.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), spec.senders.len(), "duplicate senders");
    if scheme.uses_proxy() {
        let proxy = spec.proxy.expect("proxy schemes require a proxy host");
        assert!(!spec.senders.contains(&proxy), "proxy cannot be a sender");
        assert_ne!(proxy, spec.receiver, "proxy cannot be the receiver");
        // The whole point of the design: the proxy sits in the senders'
        // datacenter.
        if let (Some(pdc), Some(sdc)) = (topo.host_dc(proxy), topo.host_dc(spec.senders[0])) {
            assert_eq!(pdc, sdc, "proxy must be in the senders' datacenter");
        }
    }
}

/// Installs an incast under `scheme`, returning the flows to watch.
pub fn install_incast(sim: &mut Simulator, spec: &IncastSpec, scheme: Scheme) -> IncastHandle {
    validate(spec, scheme, sim.topology());
    match scheme {
        Scheme::Baseline => install_baseline(sim, spec),
        Scheme::ProxyNaive => install_naive(sim, spec),
        Scheme::ProxyStreamlined => install_streamlined(sim, spec),
        Scheme::ProxyDetecting => install_detecting(sim, spec),
    }
}

/// Installs the FW#1 detector-based proxy variant: identical wiring to
/// Streamlined, but the proxy infers losses from sequence gaps (works on
/// drop-tail networks).
fn install_detecting(sim: &mut Simulator, spec: &IncastSpec) -> IncastHandle {
    let proxy_host = spec.proxy.expect("validated");
    let mut proxy =
        crate::proxy_detect::DetectingProxy::new(proxy_host, spec.streamlined_delay, spec.detector);
    let mut flows = Vec::new();
    for (i, &src) in spec.senders.iter().enumerate() {
        let flow = sim.new_flow();
        proxy
            .register(flow, src, spec.receiver)
            .expect("fresh flow id");
        flows.push((flow, src, spec.bytes_for_sender(i)));
    }
    let proxy_agent = sim.add_agent(Box::new(proxy));
    let mut watch = Vec::new();
    for (flow, src, bytes) in flows {
        let packets = packets_for_bytes(bytes);
        let cc = tune_cc(cc_via_proxy(sim, src, proxy_host, spec.receiver), spec);
        let sender = sim.add_agent(make_sender(
            spec,
            flow,
            src,
            proxy_host,
            packets,
            cc,
            Some(spec.receiver),
        ));
        let receiver = sim.add_agent(Box::new(
            Receiver::new(flow, spec.receiver, packets).with_reply_via(proxy_host),
        ));
        sim.bind(flow, src, sender);
        sim.bind(flow, proxy_host, proxy_agent);
        sim.bind(flow, spec.receiver, receiver);
        sim.schedule_start(spec.start, sender);
        watch.push(flow);
    }
    IncastHandle {
        scheme: Scheme::ProxyDetecting,
        watch_flows: watch.clone(),
        all_flows: watch,
        start: spec.start,
        proxy_agent: Some(proxy_agent),
    }
}

/// Applies the spec's CC overrides (IW scale, ECN response) to a derived
/// per-path config.
fn tune_cc(mut cc: CcConfig, spec: &IncastSpec) -> CcConfig {
    cc.init_cwnd_bytes = ((cc.init_cwnd_bytes as f64 * spec.iw_scale) as u64).max(DATA_PKT_SIZE);
    cc.ecn_response = spec.ecn_response;
    cc
}

/// Builds the sender agent for the spec's transport choice. `direct` is
/// the receiver host for proxied end-to-end flows that may fall back to
/// the direct path; failover only applies to the windowed transport.
fn make_sender(
    spec: &IncastSpec,
    flow: FlowId,
    src: HostId,
    to: HostId,
    packets: u64,
    cc: CcConfig,
    direct: Option<HostId>,
) -> Box<dyn dcsim::agent::Agent> {
    match spec.transport {
        Transport::WindowedDctcp => {
            let mut sender = DctcpSender::new(flow, src, to, packets, cc);
            if let (Some(direct), Some(cfg)) = (direct, spec.failover) {
                sender = sender.with_failover(direct, cfg);
            }
            Box::new(sender)
        }
        Transport::RateBased => {
            let rate_cc = RateCcConfig::for_path(cc.base_feedback_delay, Bandwidth::gbps(100));
            Box::new(RateSender::new(flow, src, to, packets, rate_cc))
        }
    }
}

fn install_baseline(sim: &mut Simulator, spec: &IncastSpec) -> IncastHandle {
    let mut watch = Vec::new();
    for (i, &src) in spec.senders.iter().enumerate() {
        let bytes = spec.bytes_for_sender(i);
        let packets = packets_for_bytes(bytes);
        let cc = tune_cc(cc_for_path(sim, src, spec.receiver), spec);
        let flow = sim.new_flow();
        let sender = sim.add_agent(make_sender(
            spec,
            flow,
            src,
            spec.receiver,
            packets,
            cc,
            None,
        ));
        let receiver = sim.add_agent(Box::new(Receiver::new(flow, spec.receiver, packets)));
        sim.bind(flow, src, sender);
        sim.bind(flow, spec.receiver, receiver);
        sim.schedule_start(spec.start, sender);
        watch.push(flow);
    }
    IncastHandle {
        scheme: Scheme::Baseline,
        watch_flows: watch.clone(),
        all_flows: watch,
        start: spec.start,
        proxy_agent: None,
    }
}

fn install_streamlined(sim: &mut Simulator, spec: &IncastSpec) -> IncastHandle {
    let proxy_host = spec.proxy.expect("validated");
    let mut proxy = StreamlinedProxy::new(proxy_host, spec.streamlined_delay);
    if !spec.early_nack {
        proxy = proxy.relay_only();
    }
    // Reserve flow ids and register them with the proxy first, then add the
    // proxy agent, then bind everything.
    let mut flows = Vec::new();
    for (i, &src) in spec.senders.iter().enumerate() {
        let flow = sim.new_flow();
        proxy
            .register(flow, src, spec.receiver)
            .expect("fresh flow id");
        flows.push((flow, src, spec.bytes_for_sender(i)));
    }
    let proxy_agent = sim.add_agent(Box::new(proxy));
    let mut watch = Vec::new();
    for (flow, src, bytes) in flows {
        let packets = packets_for_bytes(bytes);
        // End-to-end connection: 1 BDP of the full (via-proxy) path, RTO
        // scaled to the end-to-end RTT.
        let cc = tune_cc(cc_via_proxy(sim, src, proxy_host, spec.receiver), spec);
        let sender = sim.add_agent(make_sender(
            spec,
            flow,
            src,
            proxy_host,
            packets,
            cc,
            Some(spec.receiver),
        ));
        let receiver = sim.add_agent(Box::new(
            Receiver::new(flow, spec.receiver, packets).with_reply_via(proxy_host),
        ));
        sim.bind(flow, src, sender);
        sim.bind(flow, proxy_host, proxy_agent);
        sim.bind(flow, spec.receiver, receiver);
        sim.schedule_start(spec.start, sender);
        watch.push(flow);
    }
    IncastHandle {
        scheme: Scheme::ProxyStreamlined,
        watch_flows: watch.clone(),
        all_flows: watch,
        start: spec.start,
        proxy_agent: Some(proxy_agent),
    }
}

/// Congestion-control parameters for the end-to-end path routed via the
/// proxy: base RTT and BDP are the sums over both legs.
fn cc_via_proxy(sim: &Simulator, src: HostId, proxy: HostId, dst: HostId) -> CcConfig {
    let topo = sim.topology();
    let rtt = topo.base_rtt(src, proxy, DATA_PKT_SIZE, HEADER_SIZE)
        + topo.base_rtt(proxy, dst, DATA_PKT_SIZE, HEADER_SIZE);
    let bottleneck = topo
        .path_bottleneck(src, proxy)
        .min(topo.path_bottleneck(proxy, dst));
    CcConfig::for_rtt(rtt, bottleneck.bdp_bytes(rtt))
}

fn install_naive(sim: &mut Simulator, spec: &IncastSpec) -> IncastHandle {
    let proxy_host = spec.proxy.expect("validated");
    let mut watch = Vec::new();
    let mut all = Vec::new();
    for (i, &src) in spec.senders.iter().enumerate() {
        let bytes = spec.bytes_for_sender(i);
        let packets = packets_for_bytes(bytes);

        // Leg B: proxy → receiver, granted packet-by-packet by leg A's
        // ingress. Created first so the ingress can hold its agent id; the
        // ingress id in turn is knowable now (agents are numbered in
        // creation order: relay, leg-B receiver, leg-A sender, ingress) so
        // a relay that loses grants to a crash can ask it to resync.
        let flow_b = sim.new_flow();
        let cc_b = tune_cc(cc_for_path(sim, proxy_host, spec.receiver), spec);
        let ingress_id = AgentId(sim.agent_count() as u32 + 3);
        let relay = sim.add_agent(Box::new(
            DctcpSender::relay(flow_b, proxy_host, spec.receiver, packets, cc_b)
                .with_grant_source(ingress_id),
        ));
        let recv_b = sim.add_agent(Box::new(Receiver::new(flow_b, spec.receiver, packets)));
        sim.bind(flow_b, proxy_host, relay);
        sim.bind(flow_b, spec.receiver, recv_b);
        sim.schedule_start(spec.start, relay);

        // Leg A: sender → proxy, a full intra-DC connection.
        let flow_a = sim.new_flow();
        let cc_a = tune_cc(cc_for_path(sim, src, proxy_host), spec);
        let sender = sim.add_agent(make_sender(
            spec, flow_a, src, proxy_host, packets, cc_a, None,
        ));
        let ingress = sim.add_agent(Box::new(
            Receiver::new(flow_a, proxy_host, packets).with_grants_to(relay),
        ));
        assert_eq!(ingress, ingress_id, "naive relay grant-source wiring");
        sim.bind(flow_a, src, sender);
        sim.bind(flow_a, proxy_host, ingress);
        sim.schedule_start(spec.start, sender);

        watch.push(flow_b);
        all.push(flow_a);
        all.push(flow_b);
    }
    IncastHandle {
        scheme: Scheme::ProxyNaive,
        watch_flows: watch,
        all_flows: all,
        start: spec.start,
        proxy_agent: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulator {
        Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 11)
    }

    fn spec(sim: &Simulator, degree: usize, bytes: u64) -> IncastSpec {
        let topo = sim.topology();
        let dc0 = topo.hosts_in_dc(0);
        let dc1 = topo.hosts_in_dc(1);
        IncastSpec::new(dc0[..degree].to_vec(), dc1[0], bytes).with_proxy(*dc0.last().unwrap())
    }

    #[test]
    fn bytes_split_equally_with_remainder() {
        let s = IncastSpec::new(vec![HostId(0), HostId(1), HostId(2)], HostId(9), 10);
        assert_eq!(s.bytes_for_sender(0), 4);
        assert_eq!(s.bytes_for_sender(1), 3);
        assert_eq!(s.bytes_for_sender(2), 3);
        let total: u64 = (0..3).map(|i| s.bytes_for_sender(i)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn baseline_completes() {
        let mut s = sim();
        let spec = spec(&s, 3, 600_000);
        let h = install_incast(&mut s, &spec, Scheme::Baseline);
        assert_eq!(h.watch_flows.len(), 3);
        let r = s.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
        assert_eq!(r.stop, StopReason::Idle, "{r:?}");
        assert!(h.completion(s.metrics()).is_some());
    }

    #[test]
    fn streamlined_completes_and_proxy_nacks_on_congestion() {
        let mut s = sim();
        // Large enough to overflow the proxy down-ToR queue.
        let spec = spec(&s, 3, 60_000_000);
        let h = install_incast(&mut s, &spec, Scheme::ProxyStreamlined);
        let r = s.run(Some(SimTime::ZERO + SimDuration::from_secs(60)));
        assert_eq!(r.stop, StopReason::Idle, "{r:?}");
        assert!(h.completion(s.metrics()).is_some());
        assert!(
            s.metrics().counter(Counter::ProxyNacks) > 0,
            "a 60MB incast must trim at the proxy leaf"
        );
    }

    #[test]
    fn naive_completes_with_grant_coupling() {
        let mut s = sim();
        let spec = spec(&s, 3, 3_000_000);
        let h = install_incast(&mut s, &spec, Scheme::ProxyNaive);
        assert_eq!(h.watch_flows.len(), 3);
        assert_eq!(h.all_flows.len(), 6, "two legs per sender");
        let r = s.run(Some(SimTime::ZERO + SimDuration::from_secs(60)));
        assert_eq!(r.stop, StopReason::Idle, "{r:?}");
        assert!(h.completion(s.metrics()).is_some());
    }

    #[test]
    fn small_incast_schemes_on_par() {
        // §4.2: a 20 MB incast sees no loss and no benefit from the proxy.
        // Scaled here: an incast far below every queue threshold completes
        // in near-identical time under all three schemes.
        let mut results = Vec::new();
        for scheme in Scheme::ALL {
            let mut s = sim();
            let spec = spec(&s, 2, 200_000);
            let h = install_incast(&mut s, &spec, scheme);
            s.run(None);
            results.push(h.completion(s.metrics()).unwrap().as_secs_f64());
        }
        let base = results[0];
        for r in &results {
            assert!(
                (r - base).abs() / base < 0.5,
                "schemes should be on par for tiny incasts: {results:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "proxy must be in the senders' datacenter")]
    fn proxy_in_wrong_dc_panics() {
        let mut s = sim();
        let topo = s.topology();
        let dc0 = topo.hosts_in_dc(0);
        let dc1 = topo.hosts_in_dc(1);
        let spec = IncastSpec::new(dc0[..2].to_vec(), dc1[0], 1000).with_proxy(dc1[1]);
        install_incast(&mut s, &spec, Scheme::ProxyStreamlined);
    }

    #[test]
    #[should_panic(expected = "proxy cannot be a sender")]
    fn proxy_as_sender_panics() {
        let mut s = sim();
        let topo = s.topology();
        let dc0 = topo.hosts_in_dc(0);
        let dc1 = topo.hosts_in_dc(1);
        let spec = IncastSpec::new(dc0[..2].to_vec(), dc1[0], 1000).with_proxy(dc0[0]);
        install_incast(&mut s, &spec, Scheme::ProxyNaive);
    }

    #[test]
    #[should_panic(expected = "require a proxy host")]
    fn missing_proxy_panics() {
        let mut s = sim();
        let topo = s.topology();
        let dc0 = topo.hosts_in_dc(0);
        let dc1 = topo.hosts_in_dc(1);
        let spec = IncastSpec::new(dc0[..2].to_vec(), dc1[0], 1000);
        install_incast(&mut s, &spec, Scheme::ProxyStreamlined);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::Baseline.label(), "Baseline");
        assert!(!Scheme::Baseline.uses_proxy());
        assert!(Scheme::ProxyNaive.uses_proxy());
        assert!(Scheme::ProxyStreamlined.uses_proxy());
    }
}
