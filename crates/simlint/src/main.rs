//! `simlint` — the workspace static-analysis linter.
//!
//! Walks every `.rs` file in the repository, applies the rules in
//! [`rules`] scoped per crate by the [`registry`], and exits nonzero if
//! any violation (or malformed/stale allow directive) is found. The
//! surviving `simlint: allow` directives are printed as an inventory so
//! every sanctioned exception — and its reason — shows up in CI output.
//! Violations and the inventory are sorted by (file, line, rule) so
//! output is byte-stable run to run and CI diffs stay readable.
//!
//! Usage: `cargo run -p simlint` from anywhere in the workspace, or
//! `simlint [--json] [root]` with an explicit root directory. `--json`
//! emits the machine-readable findings object ([`output::json_report`])
//! instead of the human format; the exit code is the same either way.

mod lexer;
mod output;
mod registry;
mod rules;

use registry::active_rules;
use rules::{scan_source, AllowEntry, Rule, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories never scanned, by name, at any depth.
const SKIP_DIRS: [&str; 7] = [
    "target",
    ".git",
    ".offline-stubs",
    "results",
    ".github",
    ".claude",
    "node_modules",
];

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            root = Some(PathBuf::from(arg));
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut violations: Vec<Violation> = Vec::new();
    let mut allows: Vec<AllowEntry> = Vec::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("simlint: warning: unreadable file {}", path.display());
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let report = scan_source(&rel, &src, &active_rules(&rel));
        violations.extend(report.violations);
        allows.extend(report.allows);
    }

    // Deterministic output order: (file, line, rule), then column for
    // multiple hits on one line.
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule.map(Rule::id), a.col).cmp(&(
            &b.file,
            b.line,
            b.rule.map(Rule::id),
            b.col,
        ))
    });
    allows.sort_by(|a, b| (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id())));

    if json {
        print!("{}", output::json_report(files.len(), &violations, &allows));
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "simlint: scanned {} files, {} violation(s), {} allow(s)",
            files.len(),
            violations.len(),
            allows.len()
        );
        if !allows.is_empty() {
            println!("simlint: allow inventory:");
            for a in &allows {
                println!("  {}:{}: allow({}) — {}", a.file, a.line, a.rule, a.reason);
            }
        }
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest when run
/// via `cargo run -p simlint`, else the current directory.
fn workspace_root() -> PathBuf {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

/// Recursively collects `.rs` files under `dir`, pruning [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Ok(kind) = entry.file_type() else {
            continue;
        };
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if kind.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if kind.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
}
