//! The rule registry: every rule simlint knows, with the crate scope it
//! applies to.
//!
//! PR 4's linter had one global exemption list (`netproxy`/`trace` were
//! skipped wholesale, because the determinism rules are about the
//! simulation path and those crates' *job* is wall-clock I/O). That
//! shape broke down the moment rules with different blast radii
//! arrived: the unsafety and atomic-ordering rules apply *most* of all
//! to `netproxy`, and the FFI rule applies *only* there. So scoping is
//! now per rule, and a file is always scanned — each registered rule
//! individually decides whether it runs on that file's crate.

use crate::rules::Rule;

/// Which crates a rule runs on.
#[derive(Debug, Clone, Copy)]
pub enum Scope {
    /// Every file in the repository.
    All,
    /// Only files under `crates/<name>/` for the listed names.
    Crates(&'static [&'static str]),
    /// Every file except those under `crates/<name>/` for the listed
    /// names. Files outside `crates/` (the root package's `src/`,
    /// `tests/`, `examples/`) are always included.
    ExceptCrates(&'static [&'static str]),
}

impl Scope {
    /// Whether a rule with this scope runs on a file of `krate`
    /// (`None` = the root package / outside `crates/`).
    pub fn applies(&self, krate: Option<&str>) -> bool {
        match self {
            Scope::All => true,
            Scope::Crates(list) => krate.is_some_and(|c| list.contains(&c)),
            Scope::ExceptCrates(list) => !krate.is_some_and(|c| list.contains(&c)),
        }
    }
}

/// One registered rule.
#[derive(Debug, Clone, Copy)]
pub struct Registration {
    /// The rule.
    pub rule: Rule,
    /// Where it runs.
    pub scope: Scope,
}

/// The full registry, in reporting order.
///
/// * `hash-collections` and `wall-clock` skip the two crates whose job
///   is wall-clock I/O (the live datapath and the measurement tooling) —
///   the original PR 4 exemption, now scoped to exactly those rules.
/// * `ambient-rng` exempts only `trace` (it hosts the seed plumbing
///   itself). `netproxy` lost its exemption in PR 10: the fault shim
///   and the load generator both derive their streams from the run
///   seed via `trace::SplitMix64`, so ambient randomness in the live
///   datapath is a bug there like anywhere else.
/// * `unsafe-without-safety` is workspace-wide: only `netproxy` may
///   contain `unsafe` at all (every other crate carries
///   `#![forbid(unsafe_code)]`), but the rule watches everywhere so a
///   future forbid regression still gets a SAFETY-comment demand.
/// * `unjustified-atomic-ordering` is workspace-wide except the
///   vendored `loom` model checker, where `Ordering` arguments are
///   accepted-but-inert by design (every operation executes SeqCst;
///   per-site justification would be vacuous — the crate docs carry
///   the one real justification).
/// * `ffi-unchecked-return` runs only on `netproxy`, the one crate
///   allowed to speak libc.
pub const REGISTRY: [Registration; 6] = [
    Registration {
        rule: Rule::HashCollections,
        scope: Scope::ExceptCrates(&["netproxy", "trace"]),
    },
    Registration {
        rule: Rule::WallClock,
        scope: Scope::ExceptCrates(&["netproxy", "trace"]),
    },
    Registration {
        rule: Rule::AmbientRng,
        scope: Scope::ExceptCrates(&["trace"]),
    },
    Registration {
        rule: Rule::UnsafeWithoutSafety,
        scope: Scope::All,
    },
    Registration {
        rule: Rule::UnjustifiedAtomicOrdering,
        scope: Scope::ExceptCrates(&["loom"]),
    },
    Registration {
        rule: Rule::FfiUncheckedReturn,
        scope: Scope::Crates(&["netproxy"]),
    },
];

/// The crate a workspace-relative path belongs to (`None` for files
/// outside `crates/`, i.e. the root package).
pub fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// The active rule set for a file, per the registry.
pub fn active_rules(rel: &str) -> Vec<Rule> {
    let krate = crate_of(rel);
    REGISTRY
        .iter()
        .filter(|r| r.scope.applies(krate))
        .map(|r| r.rule)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_parses_workspace_paths() {
        assert_eq!(crate_of("crates/netproxy/src/batch.rs"), Some("netproxy"));
        assert_eq!(crate_of("crates/core/src/lib.rs"), Some("core"));
        assert_eq!(crate_of("src/lib.rs"), None);
        assert_eq!(crate_of("tests/live_proxies.rs"), None);
    }

    #[test]
    fn registry_covers_every_rule_exactly_once() {
        let mut ids: Vec<&str> = REGISTRY.iter().map(|r| r.rule.id()).collect();
        ids.sort_unstable();
        let mut all: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        all.sort_unstable();
        assert_eq!(ids, all);
    }

    #[test]
    fn determinism_rules_skip_wall_clock_crates_only() {
        assert!(!active_rules("crates/netproxy/src/shard.rs").contains(&Rule::WallClock));
        assert!(!active_rules("crates/trace/src/lib.rs").contains(&Rule::HashCollections));
        assert!(active_rules("crates/dcsim/src/sim.rs").contains(&Rule::WallClock));
        assert!(active_rules("src/lib.rs").contains(&Rule::AmbientRng));
    }

    #[test]
    fn ambient_rng_covers_netproxy_but_not_trace() {
        // PR 10: the fault shim is seed-derived, so netproxy is back
        // under the ambient-rng rule; only trace keeps the exemption.
        assert!(active_rules("crates/netproxy/src/fault.rs").contains(&Rule::AmbientRng));
        assert!(active_rules("crates/netproxy/src/loadgen.rs").contains(&Rule::AmbientRng));
        assert!(!active_rules("crates/trace/src/lib.rs").contains(&Rule::AmbientRng));
    }

    #[test]
    fn new_rules_scope_as_registered() {
        let netproxy = active_rules("crates/netproxy/src/batch.rs");
        assert!(netproxy.contains(&Rule::UnsafeWithoutSafety));
        assert!(netproxy.contains(&Rule::UnjustifiedAtomicOrdering));
        assert!(netproxy.contains(&Rule::FfiUncheckedReturn));

        let dcsim = active_rules("crates/dcsim/src/sim.rs");
        assert!(dcsim.contains(&Rule::UnsafeWithoutSafety));
        assert!(dcsim.contains(&Rule::UnjustifiedAtomicOrdering));
        assert!(!dcsim.contains(&Rule::FfiUncheckedReturn));

        let loom = active_rules("crates/loom/src/lib.rs");
        assert!(loom.contains(&Rule::UnsafeWithoutSafety));
        assert!(!loom.contains(&Rule::UnjustifiedAtomicOrdering));
    }
}
