//! The rule implementations, the allow-directive grammar, and the
//! multi-pass per-file scan.
//!
//! Six rules in two families (the registry in `registry.rs` scopes each
//! to the crates it applies to):
//!
//! **Determinism** (DESIGN.md "Determinism rules", PR 4):
//!
//! * `hash-collections` — no hash-ordered collections as sim state. The
//!   std hash map/set iterate in a per-process random order; one stray
//!   iteration turns bit-identical replay into per-run noise. Use
//!   `dcsim::det::{DetMap, DetSet, SeqMap}`.
//! * `wall-clock` — no reading the host clock: `Instant::now`,
//!   `SystemTime`, `UNIX_EPOCH`. Simulation time is `SimTime`, advanced
//!   by the event loop only.
//! * `ambient-rng` — no ambient randomness: `thread_rng`, `rand::random`,
//!   `from_entropy`, `OsRng`, `getrandom`. Every random stream must be
//!   derived from the run's seed.
//!
//! **Unsafety & concurrency audit** (DESIGN.md §14, PR 9):
//!
//! * `unsafe-without-safety` — every `unsafe` keyword (block, fn, impl)
//!   must carry a `// SAFETY:` comment: trailing on the same line, or
//!   in the run of standalone comment lines directly above.
//! * `unjustified-atomic-ordering` — every `Ordering::{Relaxed,
//!   Acquire, Release, AcqRel, SeqCst}` use must carry an
//!   `// ordering:` comment. One comment covers a contiguous block: the
//!   justification walk from a use climbs through comment lines, other
//!   ordering-use lines, and statement-continuation lines (lines whose
//!   last token is not `;`/`{`/`}`), so one comment can head a flush of
//!   eight counters or a multi-line builder chain.
//! * `ffi-unchecked-return` — a call to a declared `extern "C"`
//!   function must not discard its result: bare statement position
//!   (including the `unsafe { call(...) };` wrapper) and `let _ =` are
//!   violations. libc reports failure in-band; a dropped return value
//!   is a swallowed error.
//!
//! The scan is multi-pass: pass 1 lexes and builds per-line facts plus
//! the file's `extern "C"` function inventory; pass 2 runs each active
//! rule over the token stream against those facts. A violation is
//! suppressed only by a scoped line comment
//!
//! ```text
//! // simlint: allow(wall-clock) — measures real datapath latency
//! ```
//!
//! (a trailing comment covers its own line; a standalone comment covers
//! the next code line). The reason is mandatory; the linter prints every
//! allow as an inventory so exceptions stay visible. A malformed or
//! unused directive is itself an error — stale suppressions don't
//! accumulate.

use crate::lexer::{lex, Spanned, Tok};
use std::fmt;

/// The enforced rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-ordered collections as sim state.
    HashCollections,
    /// Wall-clock reads.
    WallClock,
    /// Ambient (non-seeded) randomness.
    AmbientRng,
    /// `unsafe` without a `// SAFETY:` justification.
    UnsafeWithoutSafety,
    /// Atomic `Ordering` use without an `// ordering:` justification.
    UnjustifiedAtomicOrdering,
    /// Discarded result of an `extern "C"` call.
    FfiUncheckedReturn,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 6] = [
        Rule::HashCollections,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::UnsafeWithoutSafety,
        Rule::UnjustifiedAtomicOrdering,
        Rule::FfiUncheckedReturn,
    ];

    /// The id used in `allow(...)` directives and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::UnsafeWithoutSafety => "unsafe-without-safety",
            Rule::UnjustifiedAtomicOrdering => "unjustified-atomic-ordering",
            Rule::FfiUncheckedReturn => "ffi-unchecked-return",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    fn advice(self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "hash iteration order is per-process random; use dcsim::det::DetMap/DetSet \
                 (key order) or SeqMap (insertion order)"
            }
            Rule::WallClock => {
                "simulation code must read SimTime, never the host clock; wall-clock I/O \
                 belongs in the netproxy/trace crates or behind an allow"
            }
            Rule::AmbientRng => {
                "derive randomness from the run seed (trace::SplitMix64 or a seeded SmallRng), \
                 never from the environment"
            }
            Rule::UnsafeWithoutSafety => {
                "every unsafe block/fn/impl must state its invariant in a `// SAFETY:` comment \
                 directly above (or trailing on the same line)"
            }
            Rule::UnjustifiedAtomicOrdering => {
                "every atomic Ordering choice must be justified by an `// ordering:` comment \
                 covering it (same line, directly above, or heading its contiguous block)"
            }
            Rule::FfiUncheckedReturn => {
                "libc reports failure in-band; bind the result and check it (or allow with a \
                 reason why the error is unactionable)"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Identifiers flagged by `hash-collections` wherever they appear in code.
const HASH_IDENTS: [&str; 7] = [
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
    "RandomState",
];

/// Identifiers flagged by `wall-clock` wherever they appear in code.
const CLOCK_IDENTS: [&str; 2] = ["SystemTime", "UNIX_EPOCH"];

/// Identifiers flagged by `ambient-rng` wherever they appear in code.
const RNG_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// The atomic orderings `unjustified-atomic-ordering` watches (the
/// `std::cmp::Ordering` variants are not in this list, so comparison
/// code never trips it).
const ORDERING_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// A rule violation (or a broken/unused allow directive).
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// `Some(rule)` for rule hits; `None` for directive problems.
    pub rule: Option<Rule>,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = self.rule.map_or("allow-directive", Rule::id);
        write!(
            f,
            "{}:{}:{}: simlint({label}): {}",
            self.file, self.line, self.col, self.message
        )
    }
}

/// A used allow directive, reported in the inventory.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub reason: String,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub allows: Vec<AllowEntry>,
}

#[derive(Debug)]
struct Directive {
    rule: Rule,
    reason: String,
    comment_line: u32,
    /// Line whose violations this directive suppresses.
    target_line: u32,
    used: bool,
}

/// Parses a line comment body as an allow directive.
///
/// Returns `None` for ordinary comments, `Some(Ok(...))` for a
/// well-formed directive, and `Some(Err(message))` for a comment that
/// clearly tries to be one but is malformed.
fn parse_directive(text: &str) -> Option<Result<(Rule, String), String>> {
    let t = text.trim();
    let rest = t.strip_prefix("simlint:")?.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Err(format!(
            "unrecognized simlint directive {t:?}; expected `simlint: allow(<rule>) — <reason>`"
        )));
    };
    let Some(close) = args.find(')') else {
        return Some(Err("unclosed `allow(` in simlint directive".into()));
    };
    let id = args[..close].trim();
    let Some(rule) = Rule::from_id(id) else {
        let known: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        return Some(Err(format!(
            "unknown rule {id:?} in allow directive; known rules: {}",
            known.join(", ")
        )));
    };
    // Reason: everything after the closing paren, minus a separator.
    let mut reason = args[close + 1..].trim_start();
    for sep in ["—", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r;
            break;
        }
    }
    let reason = reason.trim();
    if reason.is_empty() {
        return Some(Err(format!(
            "allow({id}) has no reason; every exception must say why \
             (`simlint: allow({id}) — <reason>`)"
        )));
    }
    Some(Ok((rule, reason.to_string())))
}

/// Per-line facts built in pass 1, consumed by the justification walks.
#[derive(Debug, Clone, Copy, Default)]
struct LineFact<'a> {
    /// Text of the `//` comment on this line, if any (untrimmed).
    comment: Option<&'a str>,
    /// Any code token on this line.
    has_code: bool,
    /// A flagged `Ordering::<variant>` use on this line.
    has_ordering_use: bool,
    /// The line's last code token is `;`, `{` or `}` (a statement
    /// boundary — the continuation walk stops here).
    ends_stmt: bool,
}

/// Everything pass 2 rules need about one file: the token stream, the
/// per-line fact index, and the `extern "C"` function inventory.
struct FileCtx<'a> {
    toks: &'a [Spanned<'a>],
    lines: Vec<LineFact<'a>>,
    extern_fns: Vec<&'a str>,
}

impl<'a> FileCtx<'a> {
    fn fact(&self, line: u32) -> LineFact<'a> {
        self.lines.get(line as usize).copied().unwrap_or_default()
    }

    /// Does a comment whose text starts with `tag` cover `line`?
    ///
    /// Coverage: a comment on the line itself (trailing form), or a
    /// standalone comment reached by walking upward. The walk always
    /// climbs through standalone comment lines; with `through_code` it
    /// additionally climbs through lines that themselves carry a
    /// flagged ordering use and through statement continuations (lines
    /// whose last token is not `;`/`{`/`}`), so one comment can head a
    /// contiguous block. A *trailing* comment on some other code line
    /// covers only that line — it never justifies lines below it.
    fn tagged_comment_covers(&self, line: u32, tag: &str, through_code: bool) -> bool {
        let starts = |f: LineFact<'_>| f.comment.is_some_and(|c| c.trim_start().starts_with(tag));
        if starts(self.fact(line)) {
            return true;
        }
        let mut p = line.saturating_sub(1);
        while p >= 1 {
            let f = self.fact(p);
            let comment_only = f.comment.is_some() && !f.has_code;
            if comment_only && starts(f) {
                return true;
            }
            let chains = comment_only
                || (through_code && f.has_ordering_use)
                || (through_code && f.has_code && !f.ends_stmt);
            if !chains {
                return false;
            }
            p -= 1;
        }
        false
    }
}

/// Pass 1: lex, build the line-fact index and the extern-fn inventory.
fn build_ctx<'a>(
    toks: &'a [Spanned<'a>],
    comments: &[crate::lexer::LineComment<'a>],
) -> FileCtx<'a> {
    let max_line = toks
        .iter()
        .map(|t| t.line)
        .chain(comments.iter().map(|c| c.line))
        .max()
        .unwrap_or(0) as usize;
    let mut lines: Vec<LineFact<'a>> = vec![LineFact::default(); max_line + 1];
    for c in comments {
        lines[c.line as usize].comment = Some(c.text);
    }
    for t in toks {
        let f = &mut lines[t.line as usize];
        f.has_code = true;
        // Tokens arrive in source order, so the last writer wins.
        f.ends_stmt = matches!(t.tok, Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}'));
    }
    for (i, t) in toks.iter().enumerate() {
        if t.tok == Tok::Ident("Ordering") && ordering_variant(toks, i).is_some() {
            lines[t.line as usize].has_ordering_use = true;
        }
    }
    FileCtx {
        toks,
        lines,
        extern_fns: collect_extern_fns(toks),
    }
}

/// The names declared inside `extern "C" { ... }` blocks. (The lexer
/// drops the `"C"` string literal, so the block opens right after the
/// `extern` keyword.)
fn collect_extern_fns<'a>(toks: &'a [Spanned<'a>]) -> Vec<&'a str> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok == Tok::Ident("extern")
            && toks.get(i + 1).is_some_and(|t| t.tok == Tok::Punct('{'))
        {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < toks.len() && depth > 0 {
                match toks[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => depth -= 1,
                    Tok::Ident("fn") => {
                        if let Some(Spanned {
                            tok: Tok::Ident(name),
                            ..
                        }) = toks.get(j + 1)
                        {
                            fns.push(*name);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    fns
}

/// `toks[i]` is `Ordering`; returns the flagged variant that follows
/// (`Ordering::Relaxed` etc.), if any.
fn ordering_variant<'a>(toks: &[Spanned<'a>], i: usize) -> Option<&'a str> {
    match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
        (Some(a), Some(b), Some(c)) if a.tok == Tok::Punct(':') && b.tok == Tok::Punct(':') => {
            match c.tok {
                Tok::Ident(v) if ORDERING_VARIANTS.contains(&v) => Some(v),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Scans one file's source against `active` (the registry-scoped rule
/// set for its crate — see `registry::active_rules`).
pub fn scan_source(file: &str, src: &str, active: &[Rule]) -> FileReport {
    let mut report = FileReport::default();
    let lexed = lex(src);
    let ctx = build_ctx(&lexed.tokens, &lexed.comments);

    // Directives first, so a hit can look up its suppressor.
    let mut directives: Vec<Directive> = Vec::new();
    for comment in &lexed.comments {
        match parse_directive(comment.text) {
            None => {}
            Some(Err(message)) => report.violations.push(Violation {
                file: file.to_string(),
                line: comment.line,
                col: 1,
                rule: None,
                message,
            }),
            Some(Ok((rule, reason))) => {
                let target_line = if comment.trailing {
                    comment.line
                } else {
                    // Standalone: covers the next line that has code.
                    lexed
                        .tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > comment.line)
                        .unwrap_or(comment.line)
                };
                directives.push(Directive {
                    rule,
                    reason,
                    comment_line: comment.line,
                    target_line,
                    used: false,
                });
            }
        }
    }

    let mut flag =
        |rule: Rule, line: u32, col: u32, message: String, directives: &mut [Directive]| {
            if let Some(d) = directives
                .iter_mut()
                .find(|d| d.rule == rule && d.target_line == line)
            {
                d.used = true;
                return;
            }
            report.violations.push(Violation {
                file: file.to_string(),
                line,
                col,
                rule: Some(rule),
                message,
            });
        };
    let on = |rule: Rule| active.contains(&rule);

    // Pass 2a: determinism rules (ident patterns).
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = t.tok else { continue };
        let hit = if on(Rule::HashCollections) && HASH_IDENTS.contains(&name) {
            Some((Rule::HashCollections, name))
        } else if on(Rule::WallClock) && CLOCK_IDENTS.contains(&name) {
            Some((Rule::WallClock, name))
        } else if on(Rule::AmbientRng) && RNG_IDENTS.contains(&name) {
            Some((Rule::AmbientRng, name))
        } else if on(Rule::WallClock) && name == "Instant" && followed_by(toks, i, "now") {
            Some((Rule::WallClock, "Instant::now"))
        } else if on(Rule::AmbientRng) && name == "rand" && followed_by(toks, i, "random") {
            Some((Rule::AmbientRng, "rand::random"))
        } else {
            None
        };
        if let Some((rule, what)) = hit {
            let message = format!("`{what}`: {}", rule.advice());
            flag(rule, t.line, t.col, message, &mut directives);
        }
    }

    // Pass 2b: unsafe-without-safety (keyword + SAFETY-comment walk).
    if on(Rule::UnsafeWithoutSafety) {
        for t in toks {
            if t.tok != Tok::Ident("unsafe") {
                continue;
            }
            if ctx.tagged_comment_covers(t.line, "SAFETY:", false) {
                continue;
            }
            let message = format!("`unsafe`: {}", Rule::UnsafeWithoutSafety.advice());
            flag(
                Rule::UnsafeWithoutSafety,
                t.line,
                t.col,
                message,
                &mut directives,
            );
        }
    }

    // Pass 2c: unjustified-atomic-ordering (path pattern + block walk).
    if on(Rule::UnjustifiedAtomicOrdering) {
        for (i, t) in toks.iter().enumerate() {
            if t.tok != Tok::Ident("Ordering") {
                continue;
            }
            let Some(variant) = ordering_variant(toks, i) else {
                continue;
            };
            if ctx.tagged_comment_covers(t.line, "ordering:", true) {
                continue;
            }
            let message = format!(
                "`Ordering::{variant}`: {}",
                Rule::UnjustifiedAtomicOrdering.advice()
            );
            flag(
                Rule::UnjustifiedAtomicOrdering,
                t.line,
                t.col,
                message,
                &mut directives,
            );
        }
    }

    // Pass 2d: ffi-unchecked-return (extern-fn inventory + use/discard
    // classification).
    if on(Rule::FfiUncheckedReturn) && !ctx.extern_fns.is_empty() {
        for (i, t) in toks.iter().enumerate() {
            let Tok::Ident(name) = t.tok else { continue };
            if !ctx.extern_fns.contains(&name)
                || !toks.get(i + 1).is_some_and(|n| n.tok == Tok::Punct('('))
                || toks
                    .get(i.wrapping_sub(1))
                    .is_some_and(|p| p.tok == Tok::Ident("fn"))
            {
                continue;
            }
            if call_result_discarded(toks, i) {
                let message = format!("`{name}(...)`: {}", Rule::FfiUncheckedReturn.advice());
                flag(
                    Rule::FfiUncheckedReturn,
                    t.line,
                    t.col,
                    message,
                    &mut directives,
                );
            }
        }
    }

    for d in directives {
        if d.used {
            report.allows.push(AllowEntry {
                file: file.to_string(),
                line: d.comment_line,
                rule: d.rule,
                reason: d.reason,
            });
        } else {
            report.violations.push(Violation {
                file: file.to_string(),
                line: d.comment_line,
                col: 1,
                rule: None,
                message: format!(
                    "unused allow({}) — nothing on line {} trips the rule; delete the stale \
                     suppression",
                    d.rule, d.target_line
                ),
            });
        }
    }
    report
}

/// Is the extern call at `toks[i]` (the callee ident) in a
/// result-discarding position?
///
/// Discarded means *both*:
/// * backward: statement position (`;`/`{`/`}` before it, optionally
///   through an `unsafe {` wrapper, or start of file) or an explicit
///   `let _ =`, and
/// * forward: the statement ends right after the call — `;` follows the
///   matching close paren (through the wrapper's `}` if present).
///
/// Anything else (`let rc = ...`, an `if`/`match` scrutinee, a nested
/// argument, a tail expression feeding a return value) uses the result.
fn call_result_discarded(toks: &[Spanned<'_>], i: usize) -> bool {
    // Backward: skip the `unsafe {` wrapper if present.
    let wrapped =
        i >= 2 && toks[i - 1].tok == Tok::Punct('{') && toks[i - 2].tok == Tok::Ident("unsafe");
    let pred_idx = if wrapped {
        i.checked_sub(3)
    } else {
        i.checked_sub(1)
    };
    let backward_discard = match pred_idx {
        None => true, // call starts the file: statement position
        Some(p) => match toks[p].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => true,
            Tok::Punct('=') => {
                // `let _ = [unsafe {] call(...)`: explicit discard.
                p >= 2 && toks[p - 1].tok == Tok::Ident("_") && toks[p - 2].tok == Tok::Ident("let")
            }
            _ => false,
        },
    };
    if !backward_discard {
        return false;
    }
    // Forward: find the call's matching close paren.
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let mut after = j + 1;
    if wrapped && toks.get(after).is_some_and(|t| t.tok == Tok::Punct('}')) {
        after += 1;
    }
    match toks.get(after) {
        None => true,
        Some(t) => t.tok == Tok::Punct(';'),
    }
}

/// True when `toks[i]` is followed by `::` and then the identifier `next`.
fn followed_by(toks: &[Spanned<'_>], i: usize, next: &str) -> bool {
    matches!(
        (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)),
        (
            Some(a),
            Some(b),
            Some(c)
        ) if a.tok == Tok::Punct(':')
            && b.tok == Tok::Punct(':')
            && c.tok == Tok::Ident(next)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The embedded determinism fixture: every rule with a hit, a miss,
    /// and a suppressed hit, plus directive error cases.
    pub(crate) const FIXTURE: &str = r####"
use std::collections::HashMap;                       // hit: hash-collections
use std::collections::BTreeMap;                      // miss: deterministic
struct S {
    a: HashSet<u32>,
    b: DetMap<u32, u32>,
}
// simlint: allow(hash-collections) — eBPF map mirror needs hash semantics
type Mirror = HashMap<u32, u32>;
fn clocks() {
    let t = Instant::now();                          // hit: wall-clock
    let d = Instant::from_ticks(3);                  // miss: not ::now
    let e = SystemTime::now();                       // hit: wall-clock
    let f = now();                                   // miss: bare now()
    // simlint: allow(wall-clock) — measures host latency for the bench table
    let g = Instant::now();
}
fn rngs() {
    let r = thread_rng();                            // hit: ambient-rng
    let s = rand::random::<u64>();                   // hit: ambient-rng
    let t = SmallRng::seed_from_u64(7);              // miss: seeded
    let u = rand::rngs::SmallRng::from_seed([0; 32]); // miss: seeded
    let v = from_entropy_like();                     // miss: different ident
    let w = OsRng.next_u64(); // simlint: allow(ambient-rng) - trailing form
}
fn hidden() {
    let s = "HashMap in a string is fine";
    let r = r#"thread_rng in a raw string too"#;
    // HashMap in a comment is fine
    /* Instant::now in a block comment is fine */
}
"####;

    /// The audit fixture: the three PR 9 rules, hit/miss/suppressed.
    pub(crate) const AUDIT_FIXTURE: &str = r####"
extern "C" {
    fn close(fd: i32) -> i32;
    fn socket(domain: i32, ty: i32, proto: i32) -> i32;
}
fn unsafety() {
    let a = unsafe { danger() };                     // hit: no SAFETY
    // SAFETY: the invariant is stated right here.
    let b = unsafe { danger() };                     // miss: covered above
    // SAFETY: a multi-line justification —
    // continued on a second comment line.
    let c = unsafe { danger() };                     // miss: covered above
    let d = unsafe { danger() }; // SAFETY: trailing form
    // simlint: allow(unsafe-without-safety) — fixture exercises the allow path
    let e = unsafe { danger() };
}
fn orderings(x: &AtomicU64, stop: &AtomicBool) {
    let a = x.load(Ordering::Relaxed);               // hit: no comment
    // ordering: Relaxed — counter, no data published through it.
    let b = x.load(Ordering::Relaxed);               // miss: covered
    // ordering: Relaxed — one comment heads the whole flush block.
    x.fetch_add(1, Ordering::Relaxed);
    x.fetch_add(2, Ordering::Relaxed);               // miss: chains up
    x
        .fetch_add(3, Ordering::Relaxed);            // miss: continuation
    let c = cmp(a, b) == Ordering::Less;             // miss: cmp::Ordering
    stop.store(true, Ordering::Release); // ordering: Release — trailing form
    // simlint: allow(unjustified-atomic-ordering) — fixture allow path
    stop.store(false, Ordering::Release);
}
fn ffi() {
    unsafe { close(3) };                             // SAFETY: fixture (hit: discarded)
    let _ = unsafe { close(3) };                     // SAFETY: fixture (hit: explicit discard)
    let rc = unsafe { close(3) };                    // SAFETY: fixture (miss: bound)
    if unsafe { close(3) } < 0 {}                    // SAFETY: fixture (miss: checked)
    take(unsafe { socket(1, 2, 3) });                // SAFETY: fixture (miss: argument)
    close_like(3);                                   // miss: not extern
    // simlint: allow(ffi-unchecked-return) — error unactionable in fixture
    unsafe { close(4) }; // SAFETY: fixture
}
"####;

    fn scan(src: &str) -> FileReport {
        scan_source("fixture.rs", src, &Rule::ALL)
    }

    fn hit_ids(report: &FileReport) -> Vec<&'static str> {
        report
            .violations
            .iter()
            .map(|v| v.rule.map_or("allow-directive", Rule::id))
            .collect()
    }

    #[test]
    fn fixture_hits_every_determinism_rule_and_respects_suppressions() {
        let report = scan(FIXTURE);
        // Unsuppressed hits only: HashMap use, HashSet field, Instant::now,
        // SystemTime, thread_rng, rand::random.
        assert_eq!(
            hit_ids(&report),
            vec![
                "hash-collections",
                "hash-collections",
                "wall-clock",
                "wall-clock",
                "ambient-rng",
                "ambient-rng"
            ],
            "{:#?}",
            report.violations
        );
        // All three directives were consumed and inventoried.
        let allowed: Vec<&str> = report.allows.iter().map(|a| a.rule.id()).collect();
        assert_eq!(
            allowed,
            vec!["hash-collections", "wall-clock", "ambient-rng"]
        );
        assert!(report.allows.iter().all(|a| !a.reason.is_empty()));
    }

    #[test]
    fn audit_fixture_hits_each_new_rule_exactly_where_expected() {
        let report = scan(AUDIT_FIXTURE);
        assert_eq!(
            hit_ids(&report),
            vec![
                "unsafe-without-safety",
                "unjustified-atomic-ordering",
                "ffi-unchecked-return",
                "ffi-unchecked-return"
            ],
            "{:#?}",
            report.violations
        );
        let allowed: Vec<&str> = report.allows.iter().map(|a| a.rule.id()).collect();
        assert_eq!(
            allowed,
            vec![
                "unsafe-without-safety",
                "unjustified-atomic-ordering",
                "ffi-unchecked-return"
            ]
        );
    }

    #[test]
    fn fixture_line_numbers_point_at_the_hit() {
        let report = scan(FIXTURE);
        let first = &report.violations[0];
        assert_eq!(first.line, 2, "HashMap import is on line 2");
        assert!(first.message.contains("HashMap"));
    }

    #[test]
    fn string_and_comment_identifiers_never_flag() {
        let report =
            scan("fn f() {\n  let a = \"HashMap\";\n  // SystemTime\n  /* thread_rng */\n}\n");
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn unsafe_in_string_or_comment_never_flags() {
        let report = scan("fn f() {\n  let a = \"unsafe { }\";\n  // unsafe in prose\n}\n");
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        // A blank line between the SAFETY comment and the unsafe block
        // breaks coverage: the walk only climbs contiguous comments.
        let report = scan("// SAFETY: too far away\n\nfn f() {\n  unsafe { g() };\n}\n");
        assert_eq!(hit_ids(&report), vec!["unsafe-without-safety"]);
    }

    #[test]
    fn ordering_comment_does_not_leak_past_statement_boundary() {
        // The covered statement ends (`;`); an uncommented use after a
        // non-ordering statement must flag.
        let report = scan(
            "fn f(x: &AtomicU64) {\n// ordering: Relaxed — one counter\nx.fetch_add(1, \
             Ordering::Relaxed);\nreset();\nx.fetch_add(2, Ordering::Relaxed);\n}\n",
        );
        assert_eq!(hit_ids(&report), vec!["unjustified-atomic-ordering"]);
        assert_eq!(report.violations[0].line, 5);
    }

    #[test]
    fn ordering_import_of_a_variant_is_flagged_too() {
        // `use ...Ordering::SeqCst` smuggles a bare variant into scope;
        // the import site itself must carry the justification.
        let report = scan("use std::sync::atomic::Ordering::SeqCst;\n");
        assert_eq!(hit_ids(&report), vec!["unjustified-atomic-ordering"]);
        let ok = scan("// ordering: SeqCst — model checker runs everything SC.\nuse std::sync::atomic::Ordering::SeqCst;\n");
        assert!(ok.violations.is_empty(), "{:#?}", ok.violations);
    }

    #[test]
    fn ffi_declaration_itself_never_flags() {
        let report = scan("extern \"C\" {\n    fn close(fd: i32) -> i32;\n}\n");
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn ffi_nested_call_arguments_count_as_used() {
        // Scanned with only the FFI rule active so the bare `unsafe`
        // (deliberately uncommented) doesn't muddy the assertion.
        let report = scan_source(
            "fixture.rs",
            "extern \"C\" {\n    fn socket(d: i32) -> i32;\n}\nfn f() {\n    let s = \
             wrap(unsafe { socket(pick(1)) });\n}\n",
            &[Rule::FfiUncheckedReturn],
        );
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let report = scan("// simlint: allow(wall-clock)\nlet t = Instant::now();\n");
        assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
        assert!(report.violations[0].message.contains("no reason"));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.rule == Some(Rule::WallClock)),
            "a reasonless allow must not suppress"
        );
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let report = scan("// simlint: allow(hashmaps) — wrong id\nlet x = 1;\n");
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_an_error() {
        let report = scan("// simlint: allow(wall-clock) — stale\nlet x = 1;\n");
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("unused allow"));
        assert!(report.allows.is_empty());
    }

    #[test]
    fn allow_only_covers_its_own_rule() {
        let report =
            scan("// simlint: allow(ambient-rng) — wrong rule\nlet m: HashMap<u8, u8> = x();\n");
        // The hash hit stands AND the rng allow is unused.
        assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
    }

    #[test]
    fn standalone_allow_skips_blank_and_comment_lines() {
        let report = scan(
            "// simlint: allow(wall-clock) — covers next code line\n\n// interleaved comment\nlet t = Instant::now();\n",
        );
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert_eq!(report.allows.len(), 1);
    }

    #[test]
    fn inactive_rules_do_not_run() {
        // The old whole-file exemption, reborn as per-rule scoping: a
        // wall-clock hit with only the hash rule active is clean.
        let report = scan_source(
            "netproxy.rs",
            "let t = Instant::now();",
            &[Rule::HashCollections],
        );
        assert!(report.violations.is_empty());
    }

    #[test]
    fn one_allow_covers_repeated_hits_on_its_line_only_once_each_rule() {
        // Two hits of the same rule on the covered line: both suppressed
        // (the directive marks the line, not a single token).
        let report = scan(
            "// simlint: allow(hash-collections) — both on one line\nfn f(a: HashMap<u8,u8>, b: HashSet<u8>) {}\n",
        );
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }
}
