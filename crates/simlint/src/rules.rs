//! The determinism rules, the allow-directive grammar, and the per-file
//! scan.
//!
//! Three rules, mirroring DESIGN.md's "Determinism rules":
//!
//! * `hash-collections` — no hash-ordered collections as sim state. The
//!   std hash map/set iterate in a per-process random order; one stray
//!   iteration turns bit-identical replay into per-run noise. Use
//!   `dcsim::det::{DetMap, DetSet, SeqMap}`.
//! * `wall-clock` — no reading the host clock: `Instant::now`,
//!   `SystemTime`, `UNIX_EPOCH`. Simulation time is `SimTime`, advanced
//!   by the event loop only.
//! * `ambient-rng` — no ambient randomness: `thread_rng`, `rand::random`,
//!   `from_entropy`, `OsRng`, `getrandom`. Every random stream must be
//!   derived from the run's seed.
//!
//! A violation is suppressed only by a scoped line comment
//!
//! ```text
//! // simlint: allow(wall-clock) — measures real datapath latency
//! ```
//!
//! (a trailing comment covers its own line; a standalone comment covers
//! the next code line). The reason is mandatory; the linter prints every
//! allow as an inventory so exceptions stay visible. A malformed or
//! unused directive is itself an error — stale suppressions don't
//! accumulate.

use crate::lexer::{lex, Tok};
use std::fmt;

/// The enforced rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Hash-ordered collections as sim state.
    HashCollections,
    /// Wall-clock reads.
    WallClock,
    /// Ambient (non-seeded) randomness.
    AmbientRng,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 3] = [Rule::HashCollections, Rule::WallClock, Rule::AmbientRng];

    /// The id used in `allow(...)` directives and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    fn advice(self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "hash iteration order is per-process random; use dcsim::det::DetMap/DetSet \
                 (key order) or SeqMap (insertion order)"
            }
            Rule::WallClock => {
                "simulation code must read SimTime, never the host clock; wall-clock I/O \
                 belongs in the netproxy/trace crates or behind an allow"
            }
            Rule::AmbientRng => {
                "derive randomness from the run seed (trace::SplitMix64 or a seeded SmallRng), \
                 never from the environment"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Identifiers flagged by `hash-collections` wherever they appear in code.
const HASH_IDENTS: [&str; 7] = [
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
    "RandomState",
];

/// Identifiers flagged by `wall-clock` wherever they appear in code.
const CLOCK_IDENTS: [&str; 2] = ["SystemTime", "UNIX_EPOCH"];

/// Identifiers flagged by `ambient-rng` wherever they appear in code.
const RNG_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// A rule violation (or a broken/unused allow directive).
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// `Some(rule)` for rule hits; `None` for directive problems.
    pub rule: Option<Rule>,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = self.rule.map_or("allow-directive", Rule::id);
        write!(
            f,
            "{}:{}:{}: simlint({label}): {}",
            self.file, self.line, self.col, self.message
        )
    }
}

/// A used allow directive, reported in the inventory.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub reason: String,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub allows: Vec<AllowEntry>,
}

#[derive(Debug)]
struct Directive {
    rule: Rule,
    reason: String,
    comment_line: u32,
    /// Line whose violations this directive suppresses.
    target_line: u32,
    used: bool,
}

/// Parses a line comment body as an allow directive.
///
/// Returns `None` for ordinary comments, `Some(Ok(...))` for a
/// well-formed directive, and `Some(Err(message))` for a comment that
/// clearly tries to be one but is malformed.
fn parse_directive(text: &str) -> Option<Result<(Rule, String), String>> {
    let t = text.trim();
    let rest = t.strip_prefix("simlint:")?.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Err(format!(
            "unrecognized simlint directive {t:?}; expected `simlint: allow(<rule>) — <reason>`"
        )));
    };
    let Some(close) = args.find(')') else {
        return Some(Err("unclosed `allow(` in simlint directive".into()));
    };
    let id = args[..close].trim();
    let Some(rule) = Rule::from_id(id) else {
        let known: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        return Some(Err(format!(
            "unknown rule {id:?} in allow directive; known rules: {}",
            known.join(", ")
        )));
    };
    // Reason: everything after the closing paren, minus a separator.
    let mut reason = args[close + 1..].trim_start();
    for sep in ["—", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r;
            break;
        }
    }
    let reason = reason.trim();
    if reason.is_empty() {
        return Some(Err(format!(
            "allow({id}) has no reason; every exception must say why \
             (`simlint: allow({id}) — <reason>`)"
        )));
    }
    Some(Ok((rule, reason.to_string())))
}

/// Scans one file's source against the full rule set.
///
/// `exempt` marks the explicitly wall-clock crates (`netproxy`, `trace`),
/// which the rules skip entirely.
pub fn scan_source(file: &str, src: &str, exempt: bool) -> FileReport {
    let mut report = FileReport::default();
    if exempt {
        return report;
    }
    let lexed = lex(src);

    // Collect directives first, so a hit can look up its suppressor.
    let mut directives: Vec<Directive> = Vec::new();
    for comment in &lexed.comments {
        match parse_directive(comment.text) {
            None => {}
            Some(Err(message)) => report.violations.push(Violation {
                file: file.to_string(),
                line: comment.line,
                col: 1,
                rule: None,
                message,
            }),
            Some(Ok((rule, reason))) => {
                let target_line = if comment.trailing {
                    comment.line
                } else {
                    // Standalone: covers the next line that has code.
                    lexed
                        .tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > comment.line)
                        .unwrap_or(comment.line)
                };
                directives.push(Directive {
                    rule,
                    reason,
                    comment_line: comment.line,
                    target_line,
                    used: false,
                });
            }
        }
    }

    let mut flag = |rule: Rule, line: u32, col: u32, what: &str, directives: &mut [Directive]| {
        if let Some(d) = directives
            .iter_mut()
            .find(|d| d.rule == rule && d.target_line == line)
        {
            d.used = true;
            return;
        }
        report.violations.push(Violation {
            file: file.to_string(),
            line,
            col,
            rule: Some(rule),
            message: format!("`{what}`: {}", rule.advice()),
        });
    };

    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = t.tok else { continue };
        if HASH_IDENTS.contains(&name) {
            flag(Rule::HashCollections, t.line, t.col, name, &mut directives);
        } else if CLOCK_IDENTS.contains(&name) {
            flag(Rule::WallClock, t.line, t.col, name, &mut directives);
        } else if RNG_IDENTS.contains(&name) {
            flag(Rule::AmbientRng, t.line, t.col, name, &mut directives);
        } else if name == "Instant" && followed_by(toks, i, "now") {
            flag(
                Rule::WallClock,
                t.line,
                t.col,
                "Instant::now",
                &mut directives,
            );
        } else if name == "rand" && followed_by(toks, i, "random") {
            flag(
                Rule::AmbientRng,
                t.line,
                t.col,
                "rand::random",
                &mut directives,
            );
        }
    }

    for d in directives {
        if d.used {
            report.allows.push(AllowEntry {
                file: file.to_string(),
                line: d.comment_line,
                rule: d.rule,
                reason: d.reason,
            });
        } else {
            report.violations.push(Violation {
                file: file.to_string(),
                line: d.comment_line,
                col: 1,
                rule: None,
                message: format!(
                    "unused allow({}) — nothing on line {} trips the rule; delete the stale \
                     suppression",
                    d.rule, d.target_line
                ),
            });
        }
    }
    report
}

/// True when `toks[i]` is followed by `::` and then the identifier `next`.
fn followed_by(toks: &[crate::lexer::Spanned<'_>], i: usize, next: &str) -> bool {
    matches!(
        (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)),
        (
            Some(a),
            Some(b),
            Some(c)
        ) if a.tok == Tok::Punct(':')
            && b.tok == Tok::Punct(':')
            && c.tok == Tok::Ident(next)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The embedded fixture: every rule with a hit, a miss, and a
    /// suppressed hit, plus directive error cases.
    const FIXTURE: &str = r####"
use std::collections::HashMap;                       // hit: hash-collections
use std::collections::BTreeMap;                      // miss: deterministic
struct S {
    a: HashSet<u32>,
    b: DetMap<u32, u32>,
}
// simlint: allow(hash-collections) — eBPF map mirror needs hash semantics
type Mirror = HashMap<u32, u32>;
fn clocks() {
    let t = Instant::now();                          // hit: wall-clock
    let d = Instant::from_ticks(3);                  // miss: not ::now
    let e = SystemTime::now();                       // hit: wall-clock
    let f = now();                                   // miss: bare now()
    // simlint: allow(wall-clock) — measures host latency for the bench table
    let g = Instant::now();
}
fn rngs() {
    let r = thread_rng();                            // hit: ambient-rng
    let s = rand::random::<u64>();                   // hit: ambient-rng
    let t = SmallRng::seed_from_u64(7);              // miss: seeded
    let u = rand::rngs::SmallRng::from_seed([0; 32]); // miss: seeded
    let v = from_entropy_like();                     // miss: different ident
    let w = OsRng.next_u64(); // simlint: allow(ambient-rng) - trailing form
}
fn hidden() {
    let s = "HashMap in a string is fine";
    let r = r#"thread_rng in a raw string too"#;
    // HashMap in a comment is fine
    /* Instant::now in a block comment is fine */
}
"####;

    fn scan(src: &str) -> FileReport {
        scan_source("fixture.rs", src, false)
    }

    #[test]
    fn fixture_hits_every_rule_and_respects_suppressions() {
        let report = scan(FIXTURE);
        let rules: Vec<&str> = report
            .violations
            .iter()
            .map(|v| v.rule.map_or("allow-directive", Rule::id))
            .collect();
        // Unsuppressed hits only: HashMap use, HashSet field, Instant::now,
        // SystemTime, thread_rng, rand::random.
        assert_eq!(
            rules,
            vec![
                "hash-collections",
                "hash-collections",
                "wall-clock",
                "wall-clock",
                "ambient-rng",
                "ambient-rng"
            ],
            "{:#?}",
            report.violations
        );
        // All three directives were consumed and inventoried.
        let allowed: Vec<&str> = report.allows.iter().map(|a| a.rule.id()).collect();
        assert_eq!(
            allowed,
            vec!["hash-collections", "wall-clock", "ambient-rng"]
        );
        assert!(report.allows.iter().all(|a| !a.reason.is_empty()));
    }

    #[test]
    fn fixture_line_numbers_point_at_the_hit() {
        let report = scan(FIXTURE);
        let first = &report.violations[0];
        assert_eq!(first.line, 2, "HashMap import is on line 2");
        assert!(first.message.contains("HashMap"));
    }

    #[test]
    fn string_and_comment_identifiers_never_flag() {
        let report =
            scan("fn f() {\n  let a = \"HashMap\";\n  // SystemTime\n  /* thread_rng */\n}\n");
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let report = scan("// simlint: allow(wall-clock)\nlet t = Instant::now();\n");
        assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
        assert!(report.violations[0].message.contains("no reason"));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.rule == Some(Rule::WallClock)),
            "a reasonless allow must not suppress"
        );
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let report = scan("// simlint: allow(hashmaps) — wrong id\nlet x = 1;\n");
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_an_error() {
        let report = scan("// simlint: allow(wall-clock) — stale\nlet x = 1;\n");
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("unused allow"));
        assert!(report.allows.is_empty());
    }

    #[test]
    fn allow_only_covers_its_own_rule() {
        let report =
            scan("// simlint: allow(ambient-rng) — wrong rule\nlet m: HashMap<u8, u8> = x();\n");
        // The hash hit stands AND the rng allow is unused.
        assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
    }

    #[test]
    fn standalone_allow_skips_blank_and_comment_lines() {
        let report = scan(
            "// simlint: allow(wall-clock) — covers next code line\n\n// interleaved comment\nlet t = Instant::now();\n",
        );
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert_eq!(report.allows.len(), 1);
    }

    #[test]
    fn exempt_files_are_skipped() {
        let report = scan_source("netproxy.rs", "let t = Instant::now();", true);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn one_allow_covers_repeated_hits_on_its_line_only_once_each_rule() {
        // Two hits of the same rule on the covered line: both suppressed
        // (the directive marks the line, not a single token).
        let report = scan(
            "// simlint: allow(hash-collections) — both on one line\nfn f(a: HashMap<u8,u8>, b: HashSet<u8>) {}\n",
        );
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }
}
