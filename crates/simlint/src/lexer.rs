//! A minimal Rust lexer: just enough to separate *code tokens* from
//! comments and string/char literals.
//!
//! The determinism rules are token-level ("the identifier `HashMap`
//! appears", "`Instant` followed by `::now`"), so a full parse buys
//! nothing — but a naive substring grep would flag rule names inside
//! string literals (this linter's own source!) and doc comments. The
//! lexer therefore understands exactly the constructs that can *hide*
//! or *fake* an identifier: line and (nested) block comments, string
//! and raw-string literals with `b`/`r`/`br`/`c` prefixes, char
//! literals vs. lifetimes, and raw identifiers.
//!
//! Line comments are kept (with their line number and whether code
//! precedes them on the line) because `// simlint: allow(...)`
//! suppression directives live there.

/// One code token the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok<'a> {
    /// An identifier or keyword.
    Ident(&'a str),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// A code token with its source position (1-indexed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned<'a> {
    pub tok: Tok<'a>,
    pub line: u32,
    pub col: u32,
}

/// A `//` comment, kept for directive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment<'a> {
    /// Comment text after the `//`, untrimmed.
    pub text: &'a str,
    pub line: u32,
    /// True when a code token precedes the comment on its line (a
    /// trailing comment annotates its own line; a standalone one
    /// annotates the next code line).
    pub trailing: bool,
}

/// Lexer output: code tokens and line comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub tokens: Vec<Spanned<'a>>,
    pub comments: Vec<LineComment<'a>>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`, returning code tokens and line comments.
pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_start = 0usize; // byte offset of the current line
    let mut code_on_line = false;

    // Byte-oriented scan; identifiers are ASCII in this codebase but
    // multi-byte UTF-8 is skipped safely (continuation bytes never match
    // any ASCII test below).
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
                code_on_line = false;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (includes doc comments).
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(LineComment {
                    text: &src[start..end],
                    line,
                    trailing: code_on_line,
                });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 1;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
            }
            '"' => {
                i = skip_string(bytes, i, &mut line, &mut line_start);
                code_on_line = true;
            }
            '\'' => {
                // Char literal or lifetime. `'\...'` and `'x'` are
                // literals; `'ident` (no closing quote right after) is a
                // lifetime — consume just the quote.
                if bytes.get(i + 1) == Some(&b'\\') {
                    i += 2; // skip the backslash and escaped char
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
                    i += 3; // 'x'
                } else {
                    i += 1; // lifetime quote; the ident lexes next
                }
                code_on_line = true;
            }
            _ if is_ident_start(c) => {
                // Raw-string / byte-string prefixes and raw identifiers.
                let rest = &bytes[i..];
                if let Some(skip) = string_prefix_len(rest) {
                    i += skip;
                    i = skip_raw_or_plain_string(bytes, i, &mut line, &mut line_start);
                    code_on_line = true;
                    continue;
                }
                if rest.starts_with(b"r#")
                    && rest.get(2).is_some_and(|&b| is_ident_start(b as char))
                {
                    i += 2; // raw identifier: lex the name itself
                    continue;
                }
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                out.tokens.push(Spanned {
                    tok: Tok::Ident(&src[start..i]),
                    line,
                    col: (start - line_start + 1) as u32,
                });
                code_on_line = true;
            }
            _ if c.is_ascii_digit() => {
                // Number literal (consume suffixes like 0x1f_u64 whole so
                // `x1f` never lexes as an identifier).
                while i < bytes.len() && (is_ident_continue(bytes[i] as char) || bytes[i] == b'.') {
                    i += 1;
                }
                code_on_line = true;
            }
            _ => {
                if !c.is_whitespace() {
                    out.tokens.push(Spanned {
                        tok: Tok::Punct(c),
                        line,
                        col: (i - line_start + 1) as u32,
                    });
                    code_on_line = true;
                }
                i += 1;
            }
        }
    }
    out
}

/// Length of a string-literal prefix (`b"`, `r"`, `br"`, `c"`, `r#"`,
/// `br##"`, ...) at the start of `rest`, up to but not including the
/// opening quote or `#`s — or `None` if `rest` is not a prefixed string.
fn string_prefix_len(rest: &[u8]) -> Option<usize> {
    let mut n = 0;
    if rest.first() == Some(&b'b') || rest.first() == Some(&b'c') {
        n += 1;
    }
    if rest.get(n) == Some(&b'r') {
        let mut m = n + 1;
        while rest.get(m) == Some(&b'#') {
            m += 1;
        }
        if rest.get(m) == Some(&b'"') {
            return Some(n + 1); // caller lands on the `#`s or the quote
        }
        return None;
    }
    if n > 0 && rest.get(n) == Some(&b'"') {
        return Some(n);
    }
    None
}

/// Skips a plain `"..."` string starting at the opening quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32, line_start: &mut usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
                *line_start = i;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a string whose opening `#`s-or-quote starts at `i` (after any
/// `b`/`c`/`r` prefix letters were consumed).
fn skip_raw_or_plain_string(
    bytes: &[u8],
    mut i: usize,
    line: &mut u32,
    line_start: &mut usize,
) -> usize {
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i;
    }
    if hashes == 0 && bytes.get(i.wrapping_sub(1)) != Some(&b'r') {
        // Plain prefixed string (b"..."): escapes apply.
        return skip_string(bytes, i, line, line_start);
    }
    i += 1;
    // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            *line_start = i;
            continue;
        }
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_positions() {
        let l = lex("let x = foo::bar;\nlet y = 2;");
        let first = &l.tokens[0];
        assert_eq!(first.tok, Tok::Ident("let"));
        assert_eq!((first.line, first.col), (1, 1));
        assert!(l.tokens.iter().any(|s| s.tok == Tok::Ident("bar")));
        let y = l.tokens.iter().find(|s| s.tok == Tok::Ident("y")).unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn strings_hide_identifiers() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), vec!["let", "s"]);
        assert_eq!(idents(r##"let s = r#"HashMap"#;"##), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = b"HashMap";"#), vec!["let", "s"]);
    }

    #[test]
    fn comments_hide_identifiers_but_are_kept() {
        let l = lex("// HashMap here\nlet x = 1; // trailing\n/* HashMap\n nested /* x */ */ y");
        assert!(!l.tokens.iter().any(|s| s.tok == Tok::Ident("HashMap")));
        assert!(l.tokens.iter().any(|s| s.tok == Tok::Ident("y")));
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments[0].trailing);
        assert!(l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // '"' must not open a string; 'a> is a lifetime, not a literal.
        let l = lex("let c = '\"'; fn f<'a>(x: &'a str) {} let q = 'x';");
        assert!(l.tokens.iter().any(|s| s.tok == Tok::Ident("str")));
        assert!(l.tokens.iter().any(|s| s.tok == Tok::Ident("q")));
    }

    #[test]
    fn escaped_quote_in_char() {
        assert_eq!(
            idents(r"let c = '\''; let d = 1;"),
            vec!["let", "c", "let", "d"]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_their_name() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numeric_suffixes_are_not_identifiers() {
        assert_eq!(idents("let x = 0x1f_u64 + 2e10;"), vec!["let", "x"]);
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let l = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b = l.tokens.iter().find(|s| s.tok == Tok::Ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    // ---- adversarial inputs: constructs built to fool a lesser lexer ----

    #[test]
    fn raw_string_hash_guards_do_not_end_early() {
        // `"#` inside an `r##"..."##` is content — only `"##` terminates.
        let src = r###"let s = r##"alpha "# beta"##; let tail = 1;"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "tail"]);
    }

    #[test]
    fn raw_byte_string_guards_work_too() {
        let src = r###"let s = br##"alpha "# beta"##; let tail = 1;"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "tail"]);
    }

    #[test]
    fn deeply_nested_block_comments_resume_code_after() {
        let src = "/* a /* b /* c */ d */ e */ tail";
        assert_eq!(idents(src), vec!["tail"]);
        // An unbalanced opener swallows the rest of the file.
        assert_eq!(idents("/* a /* b */ still_inside"), Vec::<&str>::new());
    }

    #[test]
    fn comment_markers_inside_strings_are_content() {
        // `//` inside a string must not start a comment (the rest of the
        // line stays code), and must not register a directive comment.
        let l = lex("let url = \"https://example\"; let after = 1;");
        let names: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["let", "url", "let", "after"]);
        assert!(l.comments.is_empty());
    }

    #[test]
    fn block_comment_markers_inside_strings_are_content() {
        let src = "let s = \"/* not a comment\"; let t = \"*/ nor this\"; tail";
        assert_eq!(idents(src), vec!["let", "s", "let", "t", "tail"]);
    }

    #[test]
    fn byte_strings_with_escaped_quotes_hide_content() {
        let src = r#"let b = b"alpha \" beta"; let tail = 1;"#;
        assert_eq!(idents(src), vec!["let", "b", "let", "tail"]);
    }

    #[test]
    fn lifetime_names_still_lex_as_identifiers() {
        // By design: `&'a` contributes `a` — rules never match bare
        // single idents, and hiding lifetimes would cost a real parser.
        assert_eq!(
            idents("fn f<'lt>(x: &'lt u8) {}"),
            vec!["fn", "f", "lt", "x", "lt", "u8"]
        );
    }

    // ---- generative differential test -----------------------------------
    //
    // Hand-rolled splitmix64 (simlint is dependency-free, so no proptest):
    // deterministic, seed fixed, failures print the offending source.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Builds random concatenations of ident-hiding constructs where the
    /// expected visible-identifier sequence is known by construction (the
    /// "reference strip"), and checks the lexer agrees on every one.
    #[test]
    fn generated_sources_match_reference_strip() {
        const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];
        let mut state = 0x5EED_CAFE_u64;
        for round in 0..512 {
            let mut src = String::new();
            let mut expect: Vec<&str> = Vec::new();
            let atoms = 1 + (splitmix64(&mut state) % 12) as usize;
            for _ in 0..atoms {
                let name = NAMES[(splitmix64(&mut state) % NAMES.len() as u64) as usize];
                match splitmix64(&mut state) % 8 {
                    0 => {
                        // Visible identifier.
                        src.push_str(name);
                        src.push(' ');
                        expect.push(name);
                    }
                    1 => {
                        // Plain string hiding the name, a comment marker,
                        // an escaped quote, and a stray single quote.
                        src.push_str(&format!("\"{name} // \\\" ' hidden\" "));
                    }
                    2 => {
                        // Raw string with 1–3 guard hashes; the content
                        // embeds `"` + (hashes-1) `#`s — one short of the
                        // terminator, so it must NOT end the literal.
                        let h = 1 + (splitmix64(&mut state) % 3) as usize;
                        let guard = "#".repeat(h);
                        let inner = format!("\"{}", "#".repeat(h - 1));
                        src.push_str(&format!("r{guard}\"{name} {inner} '{name}'\"{guard} "));
                    }
                    3 => {
                        // Byte string with an escaped quote.
                        src.push_str(&format!("b\"{name} \\\" x\" "));
                    }
                    4 => {
                        // Nested block comment, depth 1–3.
                        let d = 1 + (splitmix64(&mut state) % 3) as usize;
                        src.push_str(&"/* ".repeat(d));
                        src.push_str(name);
                        src.push_str(&" */".repeat(d));
                        src.push(' ');
                    }
                    5 => {
                        // Line comment (hides the name, ends the line).
                        src.push_str(&format!("// {name}\n"));
                    }
                    6 => {
                        // Char literal containing a double quote must not
                        // open a string and eat the following ident.
                        src.push_str("'\"' ");
                        src.push_str(name);
                        src.push(' ');
                        expect.push(name);
                    }
                    _ => {
                        // Number with ident-like suffix plus punctuation.
                        src.push_str("+ 0x1f_u64 { } ");
                    }
                }
            }
            let got = idents(&src);
            assert_eq!(got, expect, "round {round} diverged on source: {src:?}");
        }
    }
}
