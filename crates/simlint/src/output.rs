//! Machine-readable findings: a hand-rolled JSON writer.
//!
//! simlint is intentionally dependency-free (it must build before
//! anything else in bootstrap environments), so the JSON emitter is
//! local: the schema is flat, the only interesting work is string
//! escaping. Consumers are `scripts/check.sh` (asserts
//! `violation_count` is zero) and CI log scrapers; both orderings are
//! pre-sorted by the caller so diffs are stable run to run.

use crate::rules::{AllowEntry, Rule, Violation};
use std::fmt::Write;

/// Escapes `s` for a JSON string literal (quotes, backslashes, control
/// characters; everything else passes through as UTF-8).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full findings report as a JSON object.
///
/// Schema:
///
/// ```json
/// {
///   "files_scanned": 120,
///   "violation_count": 0,
///   "violations": [
///     {"file": "...", "line": 3, "col": 5, "rule": "wall-clock", "message": "..."}
///   ],
///   "allows": [
///     {"file": "...", "line": 7, "rule": "hash-collections", "reason": "..."}
///   ]
/// }
/// ```
///
/// `rule` is `"allow-directive"` for malformed/stale-directive findings
/// (they have no rule of their own). The caller sorts both lists by
/// (file, line, rule) before rendering.
pub fn json_report(
    files_scanned: usize,
    violations: &[Violation],
    allows: &[AllowEntry],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"violation_count\": {},", violations.len());
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let rule = v.rule.map_or("allow-directive", Rule::id);
        let _ = write!(
            out,
            "{sep}    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}",
            escape(&v.file),
            v.line,
            v.col,
            escape(rule),
            escape(&v.message)
        );
    }
    out.push_str(if violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"allows\": [");
    for (i, a) in allows.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            escape(&a.file),
            a.line,
            escape(a.rule.id()),
            escape(&a.reason)
        );
    }
    out.push_str(if allows.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain — text"), "plain — text");
    }

    #[test]
    fn empty_report_is_wellformed() {
        let json = json_report(7, &[], &[]);
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\"violation_count\": 0"));
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"allows\": []"));
    }

    #[test]
    fn entries_render_with_escaped_fields() {
        let v = Violation {
            file: "a.rs".into(),
            line: 3,
            col: 5,
            rule: Some(Rule::WallClock),
            message: "say \"no\"".into(),
        };
        let a = AllowEntry {
            file: "b.rs".into(),
            line: 9,
            rule: Rule::AmbientRng,
            reason: "seeded\treplay".into(),
        };
        let json = json_report(2, &[v], &[a]);
        assert!(json.contains("\"rule\": \"wall-clock\""));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.contains("\"rule\": \"ambient-rng\""));
        assert!(json.contains("seeded\\treplay"));
        assert!(json.contains("\"violation_count\": 1"));
    }
}
