//! Control-plane scenario fuzzer: shard crashes mid-incast, stale
//! placements, gossip delayed past lease expiry.
//!
//! The companion of [`crate::fuzz`] for the *control plane*: instead of
//! driving the packet simulator, each scenario drives a
//! [`ShardedOrchestrator`] through a deterministic, time-ordered schedule
//! of select / renew / release / double-release operations interleaved
//! with shard-crash windows from a [`FaultPlan`], while a model tracks
//! what every operation *should* observe (lease terms, fallback claims,
//! expected unknown-release count). Checked invariants:
//!
//! * **LeaseAccounting** — the [`LeaseLedger`] balance `granted ==
//!   released + expired + reclaimed + active` after every operation.
//! * **LeaseStateMismatch** — a renewal disagrees with the model: a lease
//!   inside its term reports `Expired`/`Unknown`, or a lapsed one reports
//!   `Renewed`/`Reclaimed`.
//! * **NoAssignment** — a select goes unserved (the degradation ladder
//!   must always produce a proxy while any candidate exists).
//! * **UnreclaimedLease** — leases still `active` (or draining) after
//!   quiescence.
//! * **HealthDivergence** — live shards' failure detectors have not
//!   converged on exactly the dead set after a bounded settle period.
//! * **ReleaseUnknownMismatch** — the audited [`release_unknown`]
//!   counter differs from the model's expected count (a lost lease or a
//!   double-free the audit missed).
//! * **Panic** — anything that unwinds.
//!
//! Failures shrink ([`shrink`]) to a minimal scenario preserving the
//! failure kind and serialize as self-contained JSON repros (tagged
//! `"type": "control-plane"` so `fuzz --replay` dispatches here; replays
//! run twice and compare, doubling as a determinism check).
//!
//! [`release_unknown`]: incast_core::orchestrator::ProxySelector::release_unknown

use crate::fuzz::mini_json::Json;
use dcsim::det::DetMap;
use dcsim::faults::{FaultPlan, ShardCrash};
use dcsim::packet::HostId;
use dcsim::time::{SimDuration, SimTime};
use incast_core::orchestrator::{
    IncastRequest, ProxySelector, RenewOutcome, ShardedConfig, ShardedOrchestrator, ShardedStats,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use trace::{derive_seed, SplitMix64};

/// Default per-finding budget of extra runs spent shrinking.
pub const DEFAULT_SHRINK_BUDGET: usize = 200;

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// One self-contained control-plane fuzz scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CpScenario {
    /// Seeds the orchestrator's decentralized fallback.
    pub sim_seed: u64,
    pub shards: u32,
    /// Proxy candidates `HostId(0..candidates)`.
    pub candidates: u32,
    /// Concurrent incast count.
    pub incasts: u64,
    /// Gap between consecutive incast arrivals (µs).
    pub arrival_gap_us: u64,
    /// Incast lifetime from select to release (µs).
    pub duration_us: u64,
    /// Holder renewal cadence (µs).
    pub renew_every_us: u64,
    pub lease_ttl_us: u64,
    pub heartbeat_us: u64,
    pub suspect_after_us: u64,
    /// Heartbeat delivery delay (µs) — may exceed the lease TTL, the
    /// "gossip slower than expiry" hazard.
    pub gossip_delay_us: u64,
    /// Every k-th incast is released twice (0 = never): the idempotence
    /// audit must count each duplicate, and nothing else.
    pub double_release_every: u64,
    /// Shard-crash windows (only `shard_crashes` is used).
    pub faults: FaultPlan,
}

impl CpScenario {
    fn config(&self) -> ShardedConfig {
        ShardedConfig {
            shards: self.shards,
            lease_ttl: SimDuration::from_micros(self.lease_ttl_us),
            heartbeat_every: SimDuration::from_micros(self.heartbeat_us),
            suspect_after: SimDuration::from_micros(self.suspect_after_us),
            gossip_delay: SimDuration::from_micros(self.gossip_delay_us),
            fallback_probes: 2,
        }
    }
}

// ---------------------------------------------------------------------------
// Running one scenario against the model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Crash(u32),
    Restore(u32),
    Select(u64),
    Renew(u64),
    Release(u64),
}

/// The deterministic operation schedule a scenario expands into.
fn schedule(sc: &CpScenario) -> Vec<(u64, u8, Op)> {
    let mut ops = Vec::new();
    for crash in &sc.faults.shard_crashes {
        ops.push((crash.at.0 / 1_000_000, 0, Op::Crash(crash.shard)));
        if let Some(restore) = crash.restore_at {
            ops.push((restore.0 / 1_000_000, 1, Op::Restore(crash.shard)));
        }
    }
    for i in 0..sc.incasts {
        let start = i * sc.arrival_gap_us;
        ops.push((start, 2, Op::Select(i)));
        let mut at = sc.renew_every_us;
        while at < sc.duration_us {
            ops.push((start + at, 3, Op::Renew(i)));
            at += sc.renew_every_us;
        }
        ops.push((start + sc.duration_us, 4, Op::Release(i)));
        if sc.double_release_every > 0 && i % sc.double_release_every == 0 {
            ops.push((start + sc.duration_us + 1, 4, Op::Release(i)));
        }
    }
    ops.sort_by_key(|&(t, order, op)| {
        let id = match op {
            Op::Crash(s) | Op::Restore(s) => s as u64,
            Op::Select(i) | Op::Renew(i) | Op::Release(i) => i,
        };
        (t, order, id)
    });
    ops
}

/// What the model believes about one issued lease.
#[derive(Debug, Clone, Copy)]
struct IdModel {
    expires_at_us: u64,
    fallback: bool,
    dead: bool,
}

/// Everything observable about one scenario run, comparable across runs
/// for the determinism check.
#[derive(Debug, Clone)]
pub struct CpOutcome {
    /// Operations executed (schedule length).
    pub ops: u64,
    /// Final degradation-ladder counters.
    pub stats: ShardedStats,
    /// First violation, as `(kind, detail)` — `None` when clean.
    pub violation: Option<(String, String)>,
    /// Panic message, if the run panicked.
    pub panic: Option<String>,
}

fn stats_tuple(s: &ShardedStats) -> (u64, u64, u64, u64, u64, u64) {
    (
        s.takeovers,
        s.fallback_selections,
        s.stale_conflicts,
        s.reclaims,
        s.expirations,
        s.release_unknown,
    )
}

fn run_inner(sc: &CpScenario) -> CpOutcome {
    let candidates: Vec<HostId> = (0..sc.candidates).map(HostId).collect();
    let mut orch = ShardedOrchestrator::new(candidates, sc.config(), sc.sim_seed);
    let mut model: DetMap<u64, IdModel> = DetMap::new();
    let mut expected_unknown = 0u64;
    let t = |us: u64| SimTime::ZERO + SimDuration::from_micros(us);

    let ops = schedule(sc);
    let mut fail: Option<(String, String)> = None;
    let mut executed = 0u64;
    let mut last_us = 0u64;
    'drive: for &(at_us, _, op) in &ops {
        last_us = last_us.max(at_us);
        orch.advance_to(t(at_us));
        match op {
            Op::Crash(shard) => orch.crash_shard(shard % sc.shards),
            Op::Restore(shard) => orch.restore_shard(shard % sc.shards, t(at_us)),
            Op::Select(id) => {
                let selected = orch.select(&IncastRequest {
                    id,
                    senders: vec![HostId(2_000)],
                    receiver: HostId(1_000 + (id as u32 % 24)),
                    expected_bytes: 1 << 16,
                });
                if selected.is_none() {
                    fail = Some((
                        "NoAssignment".into(),
                        format!("select({id}) unserved with {} candidates", sc.candidates),
                    ));
                    break 'drive;
                }
                model.insert(
                    id,
                    IdModel {
                        expires_at_us: at_us + sc.lease_ttl_us,
                        fallback: orch.serves_via_fallback(id),
                        dead: false,
                    },
                );
            }
            Op::Renew(id) => {
                let outcome = orch.renew(id, t(at_us));
                if let Some(m) = model.get_mut(&id) {
                    let live = m.fallback || (!m.dead && m.expires_at_us > at_us);
                    match outcome {
                        RenewOutcome::Renewed | RenewOutcome::Reclaimed => {
                            if !live {
                                fail = Some((
                                    "LeaseStateMismatch".into(),
                                    format!(
                                        "lapsed lease {id} renewed as {outcome:?} at {at_us}us"
                                    ),
                                ));
                                break 'drive;
                            }
                            if !m.fallback {
                                m.expires_at_us = at_us + sc.lease_ttl_us;
                            }
                        }
                        RenewOutcome::Pending => {
                            if !live {
                                fail = Some((
                                    "LeaseStateMismatch".into(),
                                    format!("lapsed lease {id} parked as Pending at {at_us}us"),
                                ));
                                break 'drive;
                            }
                        }
                        RenewOutcome::Expired | RenewOutcome::Unknown => {
                            if live {
                                fail = Some((
                                    "LeaseStateMismatch".into(),
                                    format!(
                                        "lease {id} (term to {}us) lost as {outcome:?} at {at_us}us",
                                        m.expires_at_us
                                    ),
                                ));
                                break 'drive;
                            }
                            m.dead = true;
                        }
                    }
                }
            }
            Op::Release(id) => {
                let live = model
                    .remove(&id)
                    .map(|m| m.fallback || (!m.dead && m.expires_at_us > at_us))
                    .unwrap_or(false);
                if !live {
                    expected_unknown += 1;
                }
                orch.release(id);
            }
        }
        executed += 1;
        if !orch.ledger().balanced() {
            fail = Some((
                "LeaseAccounting".into(),
                format!("unbalanced after op {executed}: {:?}", orch.ledger()),
            ));
            break 'drive;
        }
    }

    // Quiescence: long enough for every lease to expire or drain and for
    // one full gossip partner cycle plus the suspicion horizon.
    if fail.is_none() {
        let settle = sc.lease_ttl_us
            + sc.suspect_after_us
            + sc.gossip_delay_us
            + sc.heartbeat_us * (sc.shards as u64 + 16);
        let end = last_us + settle;
        let mut now = last_us;
        while now < end {
            now += sc.heartbeat_us.max(1);
            orch.advance_to(t(now));
        }
        if !orch.ledger().balanced() {
            fail = Some((
                "LeaseAccounting".into(),
                format!("unbalanced at quiescence: {:?}", orch.ledger()),
            ));
        } else if orch.ledger().active != 0 || orch.draining_leases() != 0 {
            fail = Some((
                "UnreclaimedLease".into(),
                format!(
                    "{} active / {} draining leases at quiescence: {:?}",
                    orch.ledger().active,
                    orch.draining_leases(),
                    orch.ledger()
                ),
            ));
        } else if !orch.health_converged() {
            fail = Some((
                "HealthDivergence".into(),
                format!(
                    "live shards disagree after {settle}us settle (alive={})",
                    orch.alive_shards()
                ),
            ));
        } else if orch.release_unknown() != expected_unknown {
            fail = Some((
                "ReleaseUnknownMismatch".into(),
                format!(
                    "audited {} unknown releases, model expected {expected_unknown}",
                    orch.release_unknown()
                ),
            ));
        }
    }

    CpOutcome {
        ops: executed,
        stats: orch.stats(),
        violation: fail,
        panic: None,
    }
}

impl PartialEq for CpOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops
            && stats_tuple(&self.stats) == stats_tuple(&other.stats)
            && self.violation == other.violation
            && self.panic == other.panic
    }
}

/// Runs one scenario against the model, catching panics.
pub fn run_scenario(sc: &CpScenario) -> CpOutcome {
    match catch_unwind(AssertUnwindSafe(|| run_inner(sc))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            CpOutcome {
                ops: 0,
                stats: ShardedStats::default(),
                violation: None,
                panic: Some(msg),
            }
        }
    }
}

/// Classifies an outcome. `None` = the scenario passed.
pub fn failure_kind(outcome: &CpOutcome) -> Option<String> {
    if outcome.panic.is_some() {
        return Some("Panic".to_string());
    }
    outcome.violation.as_ref().map(|(kind, _)| kind.clone())
}

/// Runs the scenario twice and checks the outcomes are identical.
pub fn check_replay(sc: &CpScenario) -> (CpOutcome, bool) {
    let a = run_scenario(sc);
    let b = run_scenario(sc);
    let same = a == b;
    (a, same)
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// Generates the scenario for a fuzz seed. Pure function of the seed.
pub fn generate(fuzz_seed: u64) -> CpScenario {
    let mut rng = SplitMix64::new(derive_seed(fuzz_seed, 0xC0DE));
    let shards = 1 + rng.next_bounded(8) as u32;
    let heartbeat_us = 40 + rng.next_bounded(200);
    let lease_ttl_us = 300 + rng.next_bounded(1_800);
    // Mostly sane delivery delays, sometimes pathological: slower than
    // the lease TTL, so suspicion can form only after orphans expire.
    let gossip_delay_us = if rng.next_bounded(5) == 0 {
        lease_ttl_us + rng.next_bounded(lease_ttl_us)
    } else {
        5 + rng.next_bounded(heartbeat_us)
    };
    // Enough slack that a live pair's direct-heartbeat gap (one partner
    // cycle) never reads as silence.
    let suspect_after_us =
        heartbeat_us * (shards as u64 + 2) + gossip_delay_us + 10 + rng.next_bounded(500);
    let incasts = 4 + rng.next_bounded(120);
    let span_us = incasts * (10 + rng.next_bounded(80));
    let mut faults = FaultPlan::new();
    for _ in 0..rng.next_bounded(4) {
        let shard = rng.next_bounded(shards as u64) as u32;
        let at = SimTime::ZERO + SimDuration::from_micros(rng.next_bounded(span_us.max(1)));
        if rng.next_bounded(3) == 0 {
            faults = faults.crash_shard(shard, at);
        } else {
            let dur = SimDuration::from_micros(100 + rng.next_bounded(span_us.max(1)));
            faults = faults.crash_shard_window(shard, at, at + dur);
        }
    }
    debug_assert!(faults.validate().is_ok(), "generated plan must validate");
    CpScenario {
        sim_seed: derive_seed(fuzz_seed, 0x51ED),
        shards,
        candidates: 1 + rng.next_bounded(16) as u32,
        incasts,
        arrival_gap_us: 10 + rng.next_bounded(80),
        duration_us: 200 + rng.next_bounded(3_000),
        renew_every_us: (lease_ttl_us / 4).max(1) + rng.next_bounded((lease_ttl_us / 4).max(1)),
        lease_ttl_us,
        heartbeat_us,
        suspect_after_us,
        gossip_delay_us,
        double_release_every: [0, 0, 3, 7][rng.next_bounded(4) as usize],
        faults,
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// One-step simplifications of a scenario, most aggressive first.
fn candidates_of(sc: &CpScenario) -> Vec<CpScenario> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut CpScenario)| {
        let mut c = sc.clone();
        f(&mut c);
        out.push(c);
    };
    for i in 0..sc.faults.shard_crashes.len() {
        push(&|c: &mut CpScenario| {
            c.faults.shard_crashes.remove(i);
        });
    }
    if sc.incasts > 1 {
        push(&|c: &mut CpScenario| c.incasts /= 2);
        push(&|c: &mut CpScenario| c.incasts -= 1);
    }
    if sc.double_release_every > 0 {
        push(&|c: &mut CpScenario| c.double_release_every = 0);
    }
    if sc.shards > 1 {
        push(&|c: &mut CpScenario| c.shards -= 1);
    }
    if sc.candidates > 1 {
        push(&|c: &mut CpScenario| c.candidates = 1);
    }
    if sc.duration_us > 200 {
        push(&|c: &mut CpScenario| c.duration_us /= 2);
    }
    if sc.gossip_delay_us > 5 {
        push(&|c: &mut CpScenario| c.gossip_delay_us /= 2);
    }
    out
}

/// Greedy delta-debugging, mirroring [`crate::fuzz::shrink`].
pub fn shrink(sc: &CpScenario, kind: &str, budget: usize) -> (CpScenario, usize) {
    let mut current = sc.clone();
    let mut runs = 0;
    'outer: loop {
        for cand in candidates_of(&current) {
            if runs >= budget {
                break 'outer;
            }
            runs += 1;
            if failure_kind(&run_scenario(&cand)).as_deref() == Some(kind) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    (current, runs)
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// One failing scenario found by a campaign, after shrinking.
#[derive(Debug, Clone)]
pub struct CpFinding {
    pub seed: u64,
    pub kind: String,
    pub original: CpScenario,
    pub shrunk: CpScenario,
    pub outcome: CpOutcome,
    pub shrink_runs: usize,
}

/// Runs `count` seeded scenarios in parallel, then shrinks each failure
/// serially. Fully deterministic for a given `(start_seed, count)`.
pub fn run_campaign(
    start_seed: u64,
    count: u64,
    jobs: usize,
    shrink_budget: usize,
) -> Vec<CpFinding> {
    let seeds: Vec<u64> = (start_seed..start_seed + count).collect();
    let results = crate::SweepRunner::new(jobs).run(&seeds, |&seed| {
        let sc = generate(seed);
        let outcome = run_scenario(&sc);
        (seed, sc, outcome)
    });
    let mut findings = Vec::new();
    for (seed, sc, outcome) in results {
        if let Some(kind) = failure_kind(&outcome) {
            let (shrunk, shrink_runs) = shrink(&sc, &kind, shrink_budget);
            let outcome = run_scenario(&shrunk);
            findings.push(CpFinding {
                seed,
                kind,
                original: sc,
                shrunk,
                outcome,
                shrink_runs,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

/// A committed control-plane repro, tagged `"type": "control-plane"` so
/// the replay entry point dispatches between fuzzer families.
#[derive(Debug, Clone, PartialEq)]
pub struct CpReproFile {
    pub found_with_seed: u64,
    /// `"clean"` or a failure kind (see [`failure_kind`]).
    pub expect: String,
    pub note: String,
    pub scenario: CpScenario,
}

impl CpReproFile {
    /// Checks a replay outcome against `expect`.
    pub fn matches(&self, outcome: &CpOutcome) -> bool {
        match failure_kind(outcome) {
            None => self.expect == "clean",
            Some(kind) => self.expect == kind,
        }
    }
}

/// True when `text` is a control-plane repro (vs a simulator repro).
pub fn is_control_plane_repro(text: &str) -> bool {
    Json::parse(text)
        .ok()
        .and_then(|v| v.get_str("type").ok().map(|t| t == "control-plane"))
        .unwrap_or(false)
}

impl CpScenario {
    fn to_value(&self) -> Json {
        let crashes = self
            .faults
            .shard_crashes
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("shard", Json::u64(c.shard as u64)),
                    ("at_ps", Json::u64(c.at.0)),
                    (
                        "restore_at_ps",
                        c.restore_at.map_or(Json::Null, |t| Json::u64(t.0)),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("sim_seed", Json::u64(self.sim_seed)),
            ("shards", Json::u64(self.shards as u64)),
            ("candidates", Json::u64(self.candidates as u64)),
            ("incasts", Json::u64(self.incasts)),
            ("arrival_gap_us", Json::u64(self.arrival_gap_us)),
            ("duration_us", Json::u64(self.duration_us)),
            ("renew_every_us", Json::u64(self.renew_every_us)),
            ("lease_ttl_us", Json::u64(self.lease_ttl_us)),
            ("heartbeat_us", Json::u64(self.heartbeat_us)),
            ("suspect_after_us", Json::u64(self.suspect_after_us)),
            ("gossip_delay_us", Json::u64(self.gossip_delay_us)),
            ("double_release_every", Json::u64(self.double_release_every)),
            ("shard_crashes", Json::Arr(crashes)),
        ])
    }

    fn from_value(v: &Json) -> Result<CpScenario, String> {
        let mut faults = FaultPlan::new();
        for c in v
            .get("shard_crashes")
            .ok_or("missing shard_crashes")?
            .arr()?
        {
            faults.shard_crashes.push(ShardCrash {
                shard: c.get_u64("shard")? as u32,
                at: SimTime(c.get_u64("at_ps")?),
                restore_at: match c.get("restore_at_ps") {
                    Some(Json::Null) | None => None,
                    Some(r) => Some(SimTime(r.u64_value()?)),
                },
            });
        }
        Ok(CpScenario {
            sim_seed: v.get_u64("sim_seed")?,
            shards: v.get_u64("shards")? as u32,
            candidates: v.get_u64("candidates")? as u32,
            incasts: v.get_u64("incasts")?,
            arrival_gap_us: v.get_u64("arrival_gap_us")?,
            duration_us: v.get_u64("duration_us")?,
            renew_every_us: v.get_u64("renew_every_us")?,
            lease_ttl_us: v.get_u64("lease_ttl_us")?,
            heartbeat_us: v.get_u64("heartbeat_us")?,
            suspect_after_us: v.get_u64("suspect_after_us")?,
            gossip_delay_us: v.get_u64("gossip_delay_us")?,
            double_release_every: v.get_u64("double_release_every")?,
            faults,
        })
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Parses a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<CpScenario, String> {
        CpScenario::from_value(&Json::parse(text)?)
    }
}

impl CpReproFile {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("type", Json::str("control-plane")),
            ("found_with_seed", Json::u64(self.found_with_seed)),
            ("expect", Json::str(&self.expect)),
            ("note", Json::str(&self.note)),
            ("scenario", self.scenario.to_value()),
        ])
        .render()
    }

    /// Parses a repro file from JSON text.
    pub fn from_json(text: &str) -> Result<CpReproFile, String> {
        let v = Json::parse(text)?;
        if v.get_str("type")? != "control-plane" {
            return Err("not a control-plane repro".to_string());
        }
        Ok(CpReproFile {
            found_with_seed: v.get_u64("found_with_seed")?,
            expect: v.get_str("expect")?.to_string(),
            note: v.get_str("note")?.to_string(),
            scenario: CpScenario::from_value(v.get("scenario").ok_or("missing scenario")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn scenario_json_round_trips() {
        for seed in [1, 2, 3, 4, 5] {
            let sc = generate(seed);
            let json = sc.to_json();
            let back = CpScenario::from_json(&json).expect("parse back");
            assert_eq!(sc, back, "round-trip for seed {seed}\n{json}");
        }
    }

    #[test]
    fn repro_type_tag_dispatches() {
        let repro = CpReproFile {
            found_with_seed: 1,
            expect: "clean".to_string(),
            note: "tag check".to_string(),
            scenario: generate(1),
        };
        let json = repro.to_json();
        assert!(is_control_plane_repro(&json));
        assert_eq!(CpReproFile::from_json(&json).unwrap(), repro);
        // A simulator repro (no tag) must not dispatch here.
        assert!(!is_control_plane_repro("{\"found_with_seed\": 1}"));
    }

    #[test]
    fn crash_free_scenarios_pass() {
        for seed in 0..10 {
            let mut sc = generate(seed);
            sc.faults = FaultPlan::new();
            let outcome = run_scenario(&sc);
            assert!(
                failure_kind(&outcome).is_none(),
                "seed {seed} failed: {outcome:?}"
            );
        }
    }

    #[test]
    fn crashing_scenarios_replay_deterministically() {
        for seed in 0..10 {
            let sc = generate(seed);
            let (outcome, same) = check_replay(&sc);
            assert!(same, "seed {seed} diverged: {outcome:?}");
        }
    }
}
