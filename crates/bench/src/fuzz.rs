//! Chaos scenario fuzzer for the incast experiment surface.
//!
//! Generates seeded random scenarios — topology size, incast workload,
//! scheme, transport, and a [`FaultPlan`] that passes `validate()` — and
//! runs each with the collect-mode invariant auditor
//! ([`dcsim::audit::AuditConfig`]). A scenario *fails* when the run
//! panics, trips an invariant, or hits the event cap. Failures are
//! delta-debugged ([`shrink`]) to a minimal scenario that still fails the
//! same way, and written out as a self-contained JSON repro file that
//! `fuzz --replay <file>` re-executes deterministically (twice, comparing
//! the two runs, so every replay doubles as a determinism check).
//!
//! Everything here is deterministic: the only randomness is
//! [`SplitMix64`] streams derived from the fuzz seed, and the campaign is
//! bounded by scenario count, never wall-clock time.
//!
//! Repro files are hand-rolled JSON (emitted *and* parsed by the
//! [`mini_json`] module) rather than serde_json, so replays work in every
//! build of this workspace and the format stays independent of serde
//! derive details.

use dcsim::prelude::*;
use incast_core::experiment::TrimPolicy;
use incast_core::scheme::{install_incast, IncastHandle, Transport};
use incast_core::{ExperimentConfig, Scheme};
use std::panic::{catch_unwind, AssertUnwindSafe};
use trace::{derive_seed, SplitMix64};

/// Audit cadence for fuzz runs (events between mid-run invariant sweeps).
pub const AUDIT_EVERY: u64 = 50_000;
/// Liveness watchdog horizon. Far above the 2 s RTO ceiling, so a flow is
/// only flagged when nothing at all is retrying it.
pub const LIVENESS_HORIZON_SECS: u64 = 8;
/// Event cap per scenario. Small topologies and ≤ 3 MB incasts finish in
/// well under a million events; 20 M means "livelock".
pub const EVENT_CAP: u64 = 20_000_000;
/// Simulated-time budget per scenario.
pub const DEFAULT_TIME_LIMIT_MS: u64 = 30_000;
/// Default per-finding budget of extra runs spent shrinking.
pub const DEFAULT_SHRINK_BUDGET: usize = 200;

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// One self-contained fuzz scenario: everything needed to rebuild and
/// re-run a simulation bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Simulator seed (drives spraying, jitter, impairment draws, ...).
    pub sim_seed: u64,
    pub scheme: Scheme,
    pub transport: Transport,
    pub trim: TrimPolicy,
    /// Incast senders.
    pub degree: usize,
    /// Total incast bytes, split across senders.
    pub total_bytes: u64,
    /// WAN one-way latency in microseconds.
    pub wan_us: u64,
    pub spines_per_dc: usize,
    pub leaves_per_dc: usize,
    pub hosts_per_leaf: usize,
    /// Background flows sharing the fabric (0 = none).
    pub background_flows: usize,
    pub early_nack: bool,
    /// Sender-side proxy failover enabled (default config).
    pub failover: bool,
    /// Arm the stuck-flow watchdog. Only sound when every fault heals
    /// (permanent outages legitimately strand flows).
    pub liveness: bool,
    /// Run under the hybrid-fidelity engine (uncontended hops advanced
    /// analytically). Absent from older repro files, defaulting to false,
    /// so committed repros keep replaying bit-identically.
    pub fidelity: bool,
    /// Simulated-time budget counted from the incast start.
    pub time_limit_ms: u64,
    pub faults: FaultPlan,
}

impl Scenario {
    /// Hosts per datacenter implied by the topology knobs.
    pub fn hosts_per_dc(&self) -> usize {
        self.leaves_per_dc * self.hosts_per_leaf
    }
}

/// True when every fault in the plan heals (links come back up, crashed
/// agents restore) — the precondition for arming the liveness watchdog.
pub fn plan_heals(plan: &FaultPlan) -> bool {
    plan.link_windows.iter().all(|w| w.up_at.is_some())
        && plan.crashes.iter().all(|c| c.restore_at.is_some())
}

// ---------------------------------------------------------------------------
// Building and running one scenario
// ---------------------------------------------------------------------------

/// Builds the simulator for a scenario. Returns `Err` (not a panic) for
/// scenarios that are structurally impossible — shrinking uses this to
/// reject candidates that mutated themselves out of validity.
pub fn build(sc: &Scenario) -> Result<(Simulator, IncastHandle), String> {
    if sc.degree == 0 || sc.total_bytes == 0 {
        return Err("degenerate incast (degree or bytes = 0)".into());
    }
    if sc.degree + 1 > sc.hosts_per_dc() {
        return Err(format!(
            "degree {} + proxy needs more than {} hosts per DC",
            sc.degree,
            sc.hosts_per_dc()
        ));
    }
    let mut topo_params = TwoDcParams::small_test();
    topo_params.spines_per_dc = sc.spines_per_dc;
    topo_params.leaves_per_dc = sc.leaves_per_dc;
    topo_params.hosts_per_leaf = sc.hosts_per_leaf;
    let topo_params = topo_params.with_wan_latency(SimDuration::from_micros(sc.wan_us));
    let config = ExperimentConfig {
        scheme: sc.scheme,
        degree: sc.degree,
        total_bytes: sc.total_bytes,
        transport: sc.transport,
        trim: sc.trim,
        early_nack: sc.early_nack,
        failover: sc.failover.then(FailoverConfig::default),
        topo: topo_params,
        ..Default::default()
    };
    let params = config.topo.with_trim(config.trim.enabled_for(sc.scheme));
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, sc.sim_seed);
    let mut audit = AuditConfig::collect().every(Some(AUDIT_EVERY));
    if sc.liveness {
        audit = audit.with_liveness(SimDuration::from_secs(LIVENESS_HORIZON_SECS));
    }
    sim.set_audit(audit);
    sim.set_event_cap(EVENT_CAP);
    let spec = config.placement(sim.topology());
    if sc.background_flows > 0 {
        let mut hosts: Vec<HostId> = (0..sim.topology().host_count() as u32)
            .map(HostId)
            .collect();
        hosts
            .retain(|h| *h != spec.receiver && Some(*h) != spec.proxy && !spec.senders.contains(h));
        if hosts.len() >= 2 {
            BackgroundTraffic {
                flows: sc.background_flows,
                sizes: FlowSizeDist::WebSearch,
                start_window: SimDuration::from_millis(10),
                hosts,
                seed: derive_seed(sc.sim_seed, 0xB6),
            }
            .install(&mut sim);
        }
    }
    let handle = install_incast(&mut sim, &spec, sc.scheme);
    if sc.fidelity {
        // Before `install_faults`, so the plan's ports get pinned hot.
        sim.set_fidelity(FidelityConfig::default());
        let receiver_tor = sim.topology().down_tor_port(spec.receiver);
        sim.pin_hot_port(receiver_tor);
        if let Some(proxy) = spec.proxy {
            let proxy_tor = sim.topology().down_tor_port(proxy);
            sim.pin_hot_port(proxy_tor);
        }
    }
    sim.install_faults(&sc.faults)
        .map_err(|e| format!("fault plan rejected: {e}"))?;
    Ok((sim, handle))
}

/// Everything observable about one scenario run, comparable across runs
/// for the determinism check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// `"idle"`, `"time-limit"`, `"event-cap"`, or `"setup-error"`.
    pub stop: String,
    pub events: u64,
    pub end_time_ps: u64,
    /// All watched incast flows completed.
    pub completed: bool,
    /// Invariant-violation kind names, in detection order.
    pub violations: Vec<String>,
    /// Human-readable violation details (or the setup error).
    pub details: Vec<String>,
    /// Panic message, if the run panicked.
    pub panic: Option<String>,
}

fn stop_name(stop: StopReason) -> &'static str {
    match stop {
        StopReason::Idle => "idle",
        StopReason::TimeLimit => "time-limit",
        StopReason::EventCap => "event-cap",
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one scenario under the collect-mode auditor, catching panics.
pub fn run_scenario(sc: &Scenario) -> RunOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let (mut sim, handle) = build(sc)?;
        let limit = handle.start + SimDuration::from_millis(sc.time_limit_ms);
        let report = sim.run(Some(limit));
        let completed = handle.completion(sim.metrics()).is_some();
        Ok::<_, String>((report, completed))
    }));
    match result {
        Ok(Ok((report, completed))) => RunOutcome {
            stop: stop_name(report.stop).to_string(),
            events: report.events,
            end_time_ps: report.end_time.0,
            completed,
            violations: report
                .violations
                .iter()
                .map(|v| v.kind().to_string())
                .collect(),
            details: report.violations.iter().map(|v| v.to_string()).collect(),
            panic: None,
        },
        Ok(Err(setup)) => RunOutcome {
            stop: "setup-error".to_string(),
            events: 0,
            end_time_ps: 0,
            completed: false,
            violations: Vec::new(),
            details: vec![setup],
            panic: None,
        },
        Err(payload) => RunOutcome {
            stop: "panic".to_string(),
            events: 0,
            end_time_ps: 0,
            completed: false,
            violations: Vec::new(),
            details: Vec::new(),
            panic: Some(panic_message(payload)),
        },
    }
}

/// Classifies an outcome. `None` = the scenario passed. A time-limit stop
/// with incomplete flows is *not* a failure by itself: permanent faults
/// legitimately strand flows, and the liveness watchdog (armed exactly
/// when every fault heals) is the stall detector.
pub fn failure_kind(outcome: &RunOutcome) -> Option<String> {
    if outcome.panic.is_some() {
        return Some("Panic".to_string());
    }
    if let Some(kind) = outcome.violations.first() {
        return Some(kind.clone());
    }
    if outcome.stop == "event-cap" {
        return Some("EventCap".to_string());
    }
    None
}

/// Runs the scenario twice and checks the outcomes are identical — the
/// replay determinism guarantee.
pub fn check_replay(sc: &Scenario) -> (RunOutcome, bool) {
    let a = run_scenario(sc);
    let b = run_scenario(sc);
    let same = a == b;
    (a, same)
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// Generates the scenario for a fuzz seed. Pure function of the seed.
pub fn generate(fuzz_seed: u64) -> Scenario {
    let mut rng = SplitMix64::new(derive_seed(fuzz_seed, 0xF022));
    let spines_per_dc = 1 + rng.next_bounded(2) as usize;
    let leaves_per_dc = 1 + rng.next_bounded(3) as usize;
    let hosts_per_leaf = 2 + rng.next_bounded(3) as usize;
    let hosts_per_dc = leaves_per_dc * hosts_per_leaf;
    let degree = 1 + rng.next_bounded((hosts_per_dc as u64 - 1).min(6)) as usize;
    let scheme = match rng.next_bounded(5) {
        0 => Scheme::Baseline,
        1 => Scheme::ProxyNaive,
        2 | 3 => Scheme::ProxyStreamlined,
        _ => Scheme::ProxyDetecting,
    };
    let transport = if rng.next_bounded(4) == 0 {
        Transport::RateBased
    } else {
        Transport::WindowedDctcp
    };
    let trim = match rng.next_bounded(4) {
        0 | 1 => TrimPolicy::SchemeDefault,
        2 => TrimPolicy::ForceOn,
        _ => TrimPolicy::ForceOff,
    };
    let mut sc = Scenario {
        sim_seed: derive_seed(fuzz_seed, 0x51ED),
        scheme,
        transport,
        trim,
        degree,
        total_bytes: 100_000 + rng.next_bounded(2_900_000),
        wan_us: 50 + rng.next_bounded(1_000),
        spines_per_dc,
        leaves_per_dc,
        hosts_per_leaf,
        background_flows: rng.next_bounded(4) as usize,
        early_nack: rng.next_bounded(8) != 0,
        failover: rng.next_bounded(2) == 0,
        liveness: false,
        fidelity: false,
        time_limit_ms: DEFAULT_TIME_LIMIT_MS,
        faults: FaultPlan::new(),
    };
    // Half the campaign exercises the hybrid-fidelity engine, so the
    // auditor's ledger checks cover express-advanced packets too.
    sc.fidelity = rng.next_bounded(2) == 1;
    // Build once (faultless) to learn how many ports and agents exist,
    // then roll a validate()-clean fault plan against those bounds.
    let (sim, _) = build(&sc).expect("faultless generated scenario must build");
    let ports = sim.topology().port_count() as u64;
    let agents = sim.agent_count() as u64;
    drop(sim);

    let mut plan = FaultPlan::new();
    // Link windows on distinct ports (distinctness sidesteps the overlap
    // rule by construction).
    let mut used_ports: Vec<u64> = Vec::new();
    for _ in 0..rng.next_bounded(3) {
        let port = loop {
            let p = rng.next_bounded(ports);
            if !used_ports.contains(&p) {
                break p;
            }
        };
        used_ports.push(port);
        let down_at = SimTime::ZERO + SimDuration::from_nanos(rng.next_bounded(3_000_000));
        if rng.next_bounded(4) == 0 {
            plan = plan.link_down(PortId(port as u32), down_at);
        } else {
            let dur = SimDuration::from_nanos(50_000 + rng.next_bounded(750_000));
            plan = plan.link_down_window(PortId(port as u32), down_at, down_at + dur);
        }
    }
    // Impairments: small loss/corruption rates, any port.
    for _ in 0..rng.next_bounded(3) {
        plan.impairments.push(PortImpairment {
            port: PortId(rng.next_bounded(ports) as u32),
            loss: rng.next_f64() * 0.15,
            corrupt: rng.next_f64() * 0.10,
        });
    }
    // Agent crashes on distinct agents.
    let mut used_agents: Vec<u64> = Vec::new();
    for _ in 0..rng.next_bounded(3) {
        let agent = loop {
            let a = rng.next_bounded(agents);
            if !used_agents.contains(&a) {
                break a;
            }
        };
        used_agents.push(agent);
        let at = SimTime::ZERO + SimDuration::from_nanos(rng.next_bounded(3_000_000));
        if rng.next_bounded(4) == 0 {
            plan = plan.crash_agent(AgentId(agent as u32), at);
        } else {
            let dur = SimDuration::from_nanos(100_000 + rng.next_bounded(4_900_000));
            plan = plan.crash_agent_window(AgentId(agent as u32), at, at + dur);
        }
    }
    debug_assert!(plan.validate().is_ok(), "generated plan must validate");
    sc.liveness = plan_heals(&plan);
    sc.faults = plan;
    sc
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// One-step simplifications of a scenario, most aggressive first.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut Scenario)| {
        let mut c = sc.clone();
        f(&mut c);
        out.push(c);
    };
    for i in 0..sc.faults.crashes.len() {
        push(&|c: &mut Scenario| {
            c.faults.crashes.remove(i);
        });
    }
    for i in 0..sc.faults.link_windows.len() {
        push(&|c: &mut Scenario| {
            c.faults.link_windows.remove(i);
        });
    }
    for i in 0..sc.faults.impairments.len() {
        push(&|c: &mut Scenario| {
            c.faults.impairments.remove(i);
        });
    }
    if sc.fidelity {
        // Dropping fidelity first tells us whether the hybrid engine
        // itself (vs. the underlying scenario) caused the failure.
        push(&|c: &mut Scenario| c.fidelity = false);
    }
    if sc.background_flows > 0 {
        push(&|c: &mut Scenario| c.background_flows = 0);
    }
    if sc.failover {
        push(&|c: &mut Scenario| c.failover = false);
    }
    if sc.total_bytes > 100_000 {
        push(&|c: &mut Scenario| c.total_bytes = (c.total_bytes / 2).max(100_000));
    }
    if sc.degree > 1 {
        push(&|c: &mut Scenario| c.degree /= 2);
    }
    if sc.spines_per_dc > 1 {
        push(&|c: &mut Scenario| c.spines_per_dc -= 1);
    }
    if sc.leaves_per_dc > 1 {
        push(&|c: &mut Scenario| c.leaves_per_dc -= 1);
    }
    if sc.hosts_per_leaf > 2 {
        push(&|c: &mut Scenario| c.hosts_per_leaf -= 1);
    }
    out
}

/// Greedy delta-debugging: repeatedly applies the first simplification
/// that still fails with the same kind, until none does or the run budget
/// is spent. Returns the shrunk scenario and how many runs were used.
///
/// Shrinking topology knobs renumbers ports/agents; candidates whose
/// fault plan no longer fits are rejected naturally (setup-error is never
/// a failure kind).
pub fn shrink(sc: &Scenario, kind: &str, budget: usize) -> (Scenario, usize) {
    let mut current = sc.clone();
    let mut runs = 0;
    'outer: loop {
        for cand in candidates(&current) {
            if runs >= budget {
                break 'outer;
            }
            runs += 1;
            if failure_kind(&run_scenario(&cand)).as_deref() == Some(kind) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    (current, runs)
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// One failing scenario found by a campaign, after shrinking.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Fuzz seed that produced it.
    pub seed: u64,
    /// Failure classification ([`failure_kind`]).
    pub kind: String,
    /// The scenario as generated.
    pub original: Scenario,
    /// The shrunk scenario (still fails with `kind`).
    pub shrunk: Scenario,
    /// Outcome of the shrunk scenario.
    pub outcome: RunOutcome,
    /// Runs spent shrinking.
    pub shrink_runs: usize,
}

/// Runs `count` seeded scenarios in parallel, then shrinks each failure
/// serially. Fully deterministic for a given `(start_seed, count)`.
pub fn run_campaign(
    start_seed: u64,
    count: u64,
    jobs: usize,
    shrink_budget: usize,
) -> Vec<Finding> {
    let seeds: Vec<u64> = (start_seed..start_seed + count).collect();
    let results = crate::SweepRunner::new(jobs).run(&seeds, |&seed| {
        let sc = generate(seed);
        let outcome = run_scenario(&sc);
        (seed, sc, outcome)
    });
    let mut findings = Vec::new();
    for (seed, sc, outcome) in results {
        if let Some(kind) = failure_kind(&outcome) {
            let (shrunk, shrink_runs) = shrink(&sc, &kind, shrink_budget);
            let outcome = run_scenario(&shrunk);
            findings.push(Finding {
                seed,
                kind,
                original: sc,
                shrunk,
                outcome,
                shrink_runs,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Repro files (hand-rolled JSON, see module docs)
// ---------------------------------------------------------------------------

/// A committed repro: the scenario plus what a replay is expected to see.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproFile {
    /// Fuzz seed the finding came from (provenance only).
    pub found_with_seed: u64,
    /// `"clean"` (bug since fixed — replay must pass) or a failure kind
    /// (known issue — replay must still fail that way).
    pub expect: String,
    /// Free-text description of the bug / issue.
    pub note: String,
    pub scenario: Scenario,
}

impl ReproFile {
    /// Checks a replay outcome against `expect`.
    pub fn matches(&self, outcome: &RunOutcome) -> bool {
        match failure_kind(outcome) {
            None => self.expect == "clean",
            Some(kind) => self.expect == kind,
        }
    }
}

fn scheme_name(s: Scheme) -> &'static str {
    match s {
        Scheme::Baseline => "baseline",
        Scheme::ProxyNaive => "naive",
        Scheme::ProxyStreamlined => "streamlined",
        Scheme::ProxyDetecting => "detecting",
    }
}

fn scheme_from(name: &str) -> Result<Scheme, String> {
    Ok(match name {
        "baseline" => Scheme::Baseline,
        "naive" => Scheme::ProxyNaive,
        "streamlined" => Scheme::ProxyStreamlined,
        "detecting" => Scheme::ProxyDetecting,
        other => return Err(format!("unknown scheme {other:?}")),
    })
}

fn transport_name(t: Transport) -> &'static str {
    match t {
        Transport::WindowedDctcp => "windowed",
        Transport::RateBased => "rate",
    }
}

fn transport_from(name: &str) -> Result<Transport, String> {
    Ok(match name {
        "windowed" => Transport::WindowedDctcp,
        "rate" => Transport::RateBased,
        other => return Err(format!("unknown transport {other:?}")),
    })
}

fn trim_name(t: TrimPolicy) -> &'static str {
    match t {
        TrimPolicy::SchemeDefault => "default",
        TrimPolicy::ForceOn => "on",
        TrimPolicy::ForceOff => "off",
    }
}

fn trim_from(name: &str) -> Result<TrimPolicy, String> {
    Ok(match name {
        "default" => TrimPolicy::SchemeDefault,
        "on" => TrimPolicy::ForceOn,
        "off" => TrimPolicy::ForceOff,
        other => return Err(format!("unknown trim policy {other:?}")),
    })
}

use mini_json::Json;

impl Scenario {
    fn to_value(&self) -> Json {
        let windows = self
            .faults
            .link_windows
            .iter()
            .map(|w| {
                Json::obj(vec![
                    ("port", Json::u64(w.port.index() as u64)),
                    ("down_at_ps", Json::u64(w.down_at.0)),
                    ("up_at_ps", w.up_at.map_or(Json::Null, |t| Json::u64(t.0))),
                ])
            })
            .collect();
        let impairments = self
            .faults
            .impairments
            .iter()
            .map(|i| {
                Json::obj(vec![
                    ("port", Json::u64(i.port.index() as u64)),
                    ("loss", Json::f64(i.loss)),
                    ("corrupt", Json::f64(i.corrupt)),
                ])
            })
            .collect();
        let crashes = self
            .faults
            .crashes
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("agent", Json::u64(c.agent.index() as u64)),
                    ("at_ps", Json::u64(c.at.0)),
                    (
                        "restore_at_ps",
                        c.restore_at.map_or(Json::Null, |t| Json::u64(t.0)),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("sim_seed", Json::u64(self.sim_seed)),
            ("scheme", Json::str(scheme_name(self.scheme))),
            ("transport", Json::str(transport_name(self.transport))),
            ("trim", Json::str(trim_name(self.trim))),
            ("degree", Json::u64(self.degree as u64)),
            ("total_bytes", Json::u64(self.total_bytes)),
            ("wan_us", Json::u64(self.wan_us)),
            ("spines_per_dc", Json::u64(self.spines_per_dc as u64)),
            ("leaves_per_dc", Json::u64(self.leaves_per_dc as u64)),
            ("hosts_per_leaf", Json::u64(self.hosts_per_leaf as u64)),
            ("background_flows", Json::u64(self.background_flows as u64)),
            ("early_nack", Json::Bool(self.early_nack)),
            ("failover", Json::Bool(self.failover)),
            ("liveness", Json::Bool(self.liveness)),
            ("fidelity", Json::Bool(self.fidelity)),
            ("time_limit_ms", Json::u64(self.time_limit_ms)),
            (
                "faults",
                Json::obj(vec![
                    ("link_windows", Json::Arr(windows)),
                    ("impairments", Json::Arr(impairments)),
                    ("crashes", Json::Arr(crashes)),
                ]),
            ),
        ])
    }

    fn from_value(v: &Json) -> Result<Scenario, String> {
        let faults_v = v.get("faults").ok_or("missing faults")?;
        let mut faults = FaultPlan::new();
        for w in faults_v
            .get("link_windows")
            .ok_or("missing link_windows")?
            .arr()?
        {
            let port = PortId(w.get_u64("port")? as u32);
            let down_at = SimTime(w.get_u64("down_at_ps")?);
            match w.get("up_at_ps") {
                Some(Json::Null) | None => faults = faults.link_down(port, down_at),
                Some(up) => {
                    faults = faults.link_down_window(port, down_at, SimTime(up.u64_value()?))
                }
            }
        }
        for i in faults_v
            .get("impairments")
            .ok_or("missing impairments")?
            .arr()?
        {
            faults.impairments.push(PortImpairment {
                port: PortId(i.get_u64("port")? as u32),
                loss: i.get_f64("loss")?,
                corrupt: i.get_f64("corrupt")?,
            });
        }
        for c in faults_v.get("crashes").ok_or("missing crashes")?.arr()? {
            let agent = AgentId(c.get_u64("agent")? as u32);
            let at = SimTime(c.get_u64("at_ps")?);
            match c.get("restore_at_ps") {
                Some(Json::Null) | None => faults = faults.crash_agent(agent, at),
                Some(r) => faults = faults.crash_agent_window(agent, at, SimTime(r.u64_value()?)),
            }
        }
        Ok(Scenario {
            sim_seed: v.get_u64("sim_seed")?,
            scheme: scheme_from(v.get_str("scheme")?)?,
            transport: transport_from(v.get_str("transport")?)?,
            trim: trim_from(v.get_str("trim")?)?,
            degree: v.get_u64("degree")? as usize,
            total_bytes: v.get_u64("total_bytes")?,
            wan_us: v.get_u64("wan_us")?,
            spines_per_dc: v.get_u64("spines_per_dc")? as usize,
            leaves_per_dc: v.get_u64("leaves_per_dc")? as usize,
            hosts_per_leaf: v.get_u64("hosts_per_leaf")? as usize,
            background_flows: v.get_u64("background_flows")? as usize,
            early_nack: v.get_bool("early_nack")?,
            failover: v.get_bool("failover")?,
            liveness: v.get_bool("liveness")?,
            // Older repro files predate the hybrid-fidelity engine.
            fidelity: match v.get("fidelity") {
                Some(Json::Bool(b)) => *b,
                Some(other) => return Err(format!("fidelity: expected bool, got {other:?}")),
                None => false,
            },
            time_limit_ms: v.get_u64("time_limit_ms")?,
            faults,
        })
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Parses a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        Scenario::from_value(&Json::parse(text)?)
    }
}

impl ReproFile {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("found_with_seed", Json::u64(self.found_with_seed)),
            ("expect", Json::str(&self.expect)),
            ("note", Json::str(&self.note)),
            ("scenario", self.scenario.to_value()),
        ])
        .render()
    }

    /// Parses a repro file from JSON text.
    pub fn from_json(text: &str) -> Result<ReproFile, String> {
        let v = Json::parse(text)?;
        Ok(ReproFile {
            found_with_seed: v.get_u64("found_with_seed")?,
            expect: v.get_str("expect")?.to_string(),
            note: v.get_str("note")?.to_string(),
            scenario: Scenario::from_value(v.get("scenario").ok_or("missing scenario")?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON (no serde_json dependency in the repro path)
// ---------------------------------------------------------------------------

/// Tiny JSON emitter + recursive-descent parser. Numbers keep their
/// source token so `u64` values round-trip exactly (no f64 detour).
pub mod mini_json {
    /// A parsed or to-be-emitted JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        /// Number as its literal token (exact round-trip).
        Num(String),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn u64(v: u64) -> Json {
            Json::Num(v.to_string())
        }
        pub fn f64(v: f64) -> Json {
            // Rust's shortest-round-trip Display; force a decimal point so
            // the token reads back as the same f64 unambiguously.
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                Json::Num(s)
            } else {
                Json::Num(format!("{s}.0"))
            }
        }
        pub fn str(v: &str) -> Json {
            Json::Str(v.to_string())
        }
        pub fn obj(fields: Vec<(&str, Json)>) -> Json {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn arr(&self) -> Result<&[Json], String> {
            match self {
                Json::Arr(items) => Ok(items),
                other => Err(format!("expected array, got {other:?}")),
            }
        }
        pub fn u64_value(&self) -> Result<u64, String> {
            match self {
                Json::Num(tok) => tok.parse().map_err(|e| format!("bad u64 {tok:?}: {e}")),
                other => Err(format!("expected number, got {other:?}")),
            }
        }
        pub fn f64_value(&self) -> Result<f64, String> {
            match self {
                Json::Num(tok) => tok.parse().map_err(|e| format!("bad f64 {tok:?}: {e}")),
                other => Err(format!("expected number, got {other:?}")),
            }
        }
        pub fn get_u64(&self, key: &str) -> Result<u64, String> {
            self.get(key).ok_or(format!("missing {key}"))?.u64_value()
        }
        pub fn get_f64(&self, key: &str) -> Result<f64, String> {
            self.get(key).ok_or(format!("missing {key}"))?.f64_value()
        }
        pub fn get_bool(&self, key: &str) -> Result<bool, String> {
            match self.get(key).ok_or(format!("missing {key}"))? {
                Json::Bool(b) => Ok(*b),
                other => Err(format!("{key}: expected bool, got {other:?}")),
            }
        }
        pub fn get_str(&self, key: &str) -> Result<&str, String> {
            match self.get(key).ok_or(format!("missing {key}"))? {
                Json::Str(s) => Ok(s),
                other => Err(format!("{key}: expected string, got {other:?}")),
            }
        }

        /// Pretty-prints with two-space indentation.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out, 0);
            out.push('\n');
            out
        }

        fn render_into(&self, out: &mut String, depth: usize) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(tok) => out.push_str(tok),
                Json::Str(s) => render_string(s, out),
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        indent(out, depth + 1);
                        item.render_into(out, depth + 1);
                    }
                    out.push('\n');
                    indent(out, depth);
                    out.push(']');
                }
                Json::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        indent(out, depth + 1);
                        render_string(k, out);
                        out.push_str(": ");
                        v.render_into(out, depth + 1);
                    }
                    out.push('\n');
                    indent(out, depth);
                    out.push('}');
                }
            }
        }

        /// Parses one JSON document (trailing whitespace allowed).
        pub fn parse(text: &str) -> Result<Json, String> {
            let bytes = text.as_bytes();
            let mut pos = 0;
            let value = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing garbage at byte {pos}"));
            }
            Ok(value)
        }
    }

    fn indent(out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        let Some(&b) = bytes.get(*pos) else {
            return Err("unexpected end of input".to_string());
        };
        match b {
            b'n' => parse_keyword(bytes, pos, "null", Json::Null),
            b't' => parse_keyword(bytes, pos, "true", Json::Bool(true)),
            b'f' => parse_keyword(bytes, pos, "false", Json::Bool(false)),
            b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
            b'[' => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        other => return Err(format!("expected , or ] in array, got {other:?}")),
                    }
                }
            }
            b'{' => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(format!("expected : after key {key:?}"));
                    }
                    *pos += 1;
                    fields.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        other => return Err(format!("expected , or }} in object, got {other:?}")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                {
                    *pos += 1;
                }
                let tok = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid utf-8 in number".to_string())?;
                // Validate the token parses as a number at all.
                tok.parse::<f64>()
                    .map_err(|e| format!("bad number {tok:?}: {e}"))?;
                Ok(Json::Num(tok.to_string()))
            }
            other => Err(format!("unexpected byte {:?} at {pos:?}", other as char)),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Json,
    ) -> Result<Json, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {pos:?}"))
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos:?}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = bytes.get(*pos) else {
                return Err("unterminated string".to_string());
            };
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = bytes.get(*pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            *pos += 4;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = *pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    *pos = end;
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn scenario_json_round_trips() {
        for seed in [1, 2, 3, 4, 5] {
            let sc = generate(seed);
            let json = sc.to_json();
            let back = Scenario::from_json(&json).expect("parse back");
            assert_eq!(sc, back, "round-trip for seed {seed}\n{json}");
        }
    }

    #[test]
    fn repro_file_round_trips() {
        let repro = ReproFile {
            found_with_seed: 42,
            expect: "clean".to_string(),
            note: "weird \"quotes\" and\nnewlines — unicode too".to_string(),
            scenario: generate(42),
        };
        let json = repro.to_json();
        let back = ReproFile::from_json(&json).expect("parse back");
        assert_eq!(repro, back);
    }

    #[test]
    fn faultless_scenario_replays_deterministically() {
        let mut sc = generate(3);
        sc.faults = FaultPlan::new();
        sc.liveness = true;
        let (outcome, same) = check_replay(&sc);
        assert!(same, "replay diverged: {outcome:?}");
        assert!(outcome.panic.is_none(), "{outcome:?}");
    }

    #[test]
    fn mini_json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} extra").is_err());
    }
}
