//! Ablation: ECN marking-threshold sensitivity (§4.1 parameters).
//!
//! §4.1 fixes the leaf/spine marking thresholds at 33.2 KB / 136.95 KB
//! (DCTCP-style shallow marking). Shallow thresholds are tuned for
//! microsecond RTTs; across a millisecond long-haul they force deep
//! window cuts long before the pipe is full — one reason the baseline
//! struggles (cf. the Gemini paper, reference 73 in the paper). We scale both thresholds together and
//! watch each scheme's sensitivity.
//!
//! Run with: `cargo run --release -p bench --bin ablation_marking [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use dcsim::prelude::*;
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    threshold_scale: f64,
    scheme: String,
    mean_secs: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: ECN thresholds",
        "ICT vs marking-threshold scale (degree 8, 100 MB; 1.0 = paper values)",
    );
    let scales: &[f64] = if opts.quick {
        &[1.0, 16.0]
    } else {
        &[0.25, 1.0, 4.0, 16.0, 64.0]
    };

    let cells: Vec<(f64, Scheme)> = scales
        .iter()
        .flat_map(|&scale| Scheme::ALL.into_iter().map(move |scheme| (scale, scheme)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(scale, scheme)| {
            let mut topo = TwoDcParams::default();
            topo.dc_queue.mark_low_bytes = (33_200.0 * scale) as u64;
            topo.dc_queue.mark_high_bytes = (136_950.0 * scale) as u64;
            ExperimentConfig {
                scheme,
                degree: 8,
                total_bytes: 100_000_000,
                topo,
                seed: opts.seed,
                ..Default::default()
            }
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec!["threshold scale", "scheme", "ICT mean"]);
    for (&(scale, scheme), (summary, _)) in cells.iter().zip(&results) {
        table.row(vec![
            format!("{scale}x"),
            scheme.label().to_string(),
            fmt_secs(summary.mean),
        ]);
        emit_json(
            "ablation_marking",
            &Point {
                threshold_scale: scale,
                scheme: scheme.label().to_string(),
                mean_secs: summary.mean,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("expected: the baseline improves substantially with deeper");
    println!("thresholds (its cuts are driven by marks echoed over the long");
    println!("haul); the proxies barely move — their convergence is governed");
    println!("by the short local loop, not by the marking configuration.");
}
