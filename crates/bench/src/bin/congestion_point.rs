//! Mechanism demonstration: the proxy *moves the congestion point*
//! (Figure 1 / Insight #1, measured).
//!
//! Traces the queue occupancy of the two candidate bottlenecks — the
//! receiver's down-ToR in the receiving datacenter and the proxy's
//! down-ToR in the sending datacenter — under each scheme, and prints the
//! occupancy timeline. Under Baseline the receiver-side queue saturates
//! (and the loss evidence sits a millisecond from the senders); under the
//! proxy schemes the proxy-side queue saturates instead, microseconds
//! from the senders, while the receiver-side queue stays almost empty.
//!
//! Run with: `cargo run --release -p bench --bin congestion_point [--quick]`

use bench::{banner, emit_json, RunOptions};
use dcsim::prelude::*;
use incast_core::experiment::{ExperimentConfig, TrimPolicy};
use incast_core::scheme::install_incast;
use incast_core::Scheme;
use serde::Serialize;
use trace::timeseries::{step_max, step_mean};
use trace::Table;

#[derive(Serialize)]
struct Point {
    scheme: String,
    queue: String,
    max_occupancy_bytes: u64,
    mean_occupancy_bytes: u64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Congestion point",
        "queue occupancy at the receiver vs proxy down-ToR (degree 8, 100 MB)",
    );

    // One traced simulation per scheme, all independent: fan them out and
    // collect each scheme's two (queue name, max, mean) rows.
    let results = opts.sweep_runner().run(&Scheme::ALL, |&scheme| {
        let config = ExperimentConfig {
            scheme,
            degree: 8,
            total_bytes: 100_000_000,
            seed: opts.seed,
            ..Default::default()
        };
        let params = config
            .topo
            .with_trim(TrimPolicy::SchemeDefault.enabled_for(scheme));
        let topo = two_dc_leaf_spine(&params);
        let mut sim = Simulator::new(topo, opts.seed);
        let spec = config.placement(sim.topology());
        let rx_port = sim.topology().down_tor_port(spec.receiver);
        let px_port = sim
            .topology()
            .down_tor_port(spec.proxy.expect("placement sets proxy"));
        sim.trace_port(rx_port);
        sim.trace_port(px_port);
        let handle = install_incast(&mut sim, &spec, scheme);
        bench::expect_no_event_cap(
            sim.run(Some(SimTime::ZERO + config.time_limit)),
            "congestion-point sweep",
        );
        let end = handle.completion(sim.metrics()).expect("completes");
        [("receiver down-ToR", rx_port), ("proxy down-ToR", px_port)].map(|(name, port)| {
            // The sim keeps running (stray timers, trailing control
            // packets) after the incast completes; the occupancy stats
            // cover the incast itself, so clip the trace at `end`.
            let samples: Vec<(u64, u64)> = sim
                .port_trace(port)
                .iter()
                .map(|&(t, b)| (t.0, b))
                .take_while(|&(t, _)| t <= end.0)
                .collect();
            (name, step_max(&samples), step_mean(&samples, end.0) as u64)
        })
    });

    let mut table = Table::new(vec!["scheme", "queue", "max occupancy", "mean occupancy"]);
    for (scheme, rows) in Scheme::ALL.into_iter().zip(results) {
        for (name, max, mean) in rows {
            table.row(vec![
                scheme.label().to_string(),
                name.to_string(),
                trace::table::fmt_bytes(max),
                trace::table::fmt_bytes(mean),
            ]);
            emit_json(
                "congestion_point",
                &Point {
                    scheme: scheme.label().to_string(),
                    queue: name.to_string(),
                    max_occupancy_bytes: max,
                    mean_occupancy_bytes: mean,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected: Baseline saturates the receiver down-ToR (a full");
    println!("17 MB buffer, milliseconds from the senders); the proxy schemes");
    println!("saturate the proxy down-ToR instead and leave the receiver-side");
    println!("queue nearly empty — the bottleneck moved into the sending DC.");
}
