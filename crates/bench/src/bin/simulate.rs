//! General-purpose experiment CLI: run any incast configuration from
//! flags and get the table + JSON that the figure binaries produce.
//!
//! ```console
//! $ cargo run --release -p bench --bin simulate -- \
//!       --scheme streamlined --degree 16 --mb 100 --wan-us 1000 --runs 5
//! ```
//!
//! Flags:
//!   --scheme baseline|naive|streamlined|detecting|all   (default all)
//!   --degree N          senders (default 8)
//!   --mb N              total incast megabytes (default 100)
//!   --wan-us N          long-haul link latency in µs (default 1000)
//!   --runs N            repetitions (default 5)
//!   --seed N            base seed (default 1)
//!   --iw-scale X        initial-window scale (default 1.0)
//!   --jitter X          leaf-spine latency jitter fraction (default 0)
//!   --background N      background flows sharing the fabric (default 0)
//!   --trim default|on|off   trimming policy (default scheme-default)
//!   --jobs N            worker threads for the sweep (default: all cores)

use dcsim::prelude::*;
use incast_core::experiment::TrimPolicy;
use incast_core::scheme::install_incast;
use incast_core::{ExperimentConfig, Scheme};
use trace::table::fmt_secs;
use trace::{derive_seed, Summary, Table};

#[derive(Debug, Clone)]
struct Cli {
    schemes: Vec<Scheme>,
    degree: usize,
    mb: u64,
    wan_us: u64,
    runs: usize,
    seed: u64,
    iw_scale: f64,
    jitter: f64,
    background: usize,
    trim: TrimPolicy,
    jobs: usize,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            schemes: Scheme::ALL.to_vec(),
            degree: 8,
            mb: 100,
            wan_us: 1000,
            runs: 5,
            seed: 1,
            iw_scale: 1.0,
            jitter: 0.0,
            background: 0,
            trim: TrimPolicy::SchemeDefault,
            jobs: 0,
        }
    }
}

fn parse_args() -> Cli {
    let mut cli = Cli::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let usage = "see the module docs: --scheme --degree --mb --wan-us --runs --seed --iw-scale --jitter --background --trim --jobs";
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("{arg} needs a value; {usage}"))
                .clone()
        };
        match arg.as_str() {
            "--scheme" => {
                cli.schemes = match value().as_str() {
                    "baseline" => vec![Scheme::Baseline],
                    "naive" => vec![Scheme::ProxyNaive],
                    "streamlined" => vec![Scheme::ProxyStreamlined],
                    "detecting" => vec![Scheme::ProxyDetecting],
                    "all" => Scheme::ALL.to_vec(),
                    "extended" => Scheme::EXTENDED.to_vec(),
                    other => panic!("unknown scheme {other:?}; {usage}"),
                };
            }
            "--degree" => cli.degree = value().parse().expect("--degree: integer"),
            "--mb" => cli.mb = value().parse().expect("--mb: integer"),
            "--wan-us" => cli.wan_us = value().parse().expect("--wan-us: integer"),
            "--runs" => cli.runs = value().parse().expect("--runs: integer"),
            "--seed" => cli.seed = value().parse().expect("--seed: integer"),
            "--iw-scale" => cli.iw_scale = value().parse().expect("--iw-scale: float"),
            "--jitter" => cli.jitter = value().parse().expect("--jitter: float"),
            "--background" => cli.background = value().parse().expect("--background: integer"),
            "--trim" => {
                cli.trim = match value().as_str() {
                    "default" => TrimPolicy::SchemeDefault,
                    "on" => TrimPolicy::ForceOn,
                    "off" => TrimPolicy::ForceOff,
                    other => panic!("unknown trim policy {other:?}; {usage}"),
                };
            }
            "--jobs" => cli.jobs = value().parse().expect("--jobs: integer"),
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; {usage}"),
        }
    }
    assert!(cli.runs > 0, "--runs must be positive");
    cli
}

fn run_once(cli: &Cli, scheme: Scheme, seed: u64) -> (f64, u64, u64, TerminatedReason) {
    let config = ExperimentConfig {
        scheme,
        degree: cli.degree,
        total_bytes: cli.mb * 1_000_000,
        iw_scale: cli.iw_scale,
        trim: cli.trim,
        topo: TwoDcParams::default()
            .with_wan_latency(SimDuration::from_micros(cli.wan_us))
            .with_path_jitter(cli.jitter, seed),
        ..Default::default()
    };
    let params = config.topo.with_trim(config.trim.enabled_for(scheme));
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let spec = config.placement(sim.topology());
    if cli.background > 0 {
        let mut hosts: Vec<HostId> = (0..sim.topology().host_count() as u32)
            .map(HostId)
            .collect();
        hosts
            .retain(|h| !spec.senders.contains(h) && *h != spec.receiver && Some(*h) != spec.proxy);
        BackgroundTraffic {
            flows: cli.background,
            sizes: FlowSizeDist::WebSearch,
            start_window: SimDuration::from_millis(10),
            hosts,
            seed: derive_seed(seed, 0xC11),
        }
        .install(&mut sim);
    }
    let handle = install_incast(&mut sim, &spec, scheme);
    let report = bench::expect_no_event_cap(
        sim.run(Some(SimTime::ZERO + config.time_limit)),
        "simulate run",
    );
    let ict = handle
        .completion(sim.metrics())
        .expect("incast must complete within the time limit")
        .as_secs_f64();
    let m = sim.metrics();
    (
        ict,
        m.counter(Counter::RtoFires),
        m.counter(Counter::Retransmits),
        report.terminated_reason(),
    )
}

/// Distinct termination reasons across the repetitions, joined with `+`
/// in first-seen order (normally just `completed`).
fn reasons(outcomes: &[(f64, u64, u64, TerminatedReason)]) -> String {
    let mut seen: Vec<String> = Vec::new();
    for &(_, _, _, reason) in outcomes {
        let r = reason.to_string();
        if !seen.contains(&r) {
            seen.push(r);
        }
    }
    seen.join("+")
}

fn main() {
    let cli = parse_args();
    println!(
        "incast: degree {} x {} MB total, wan {} us, iw x{}, jitter {}, background {}, {} run(s)",
        cli.degree, cli.mb, cli.wan_us, cli.iw_scale, cli.jitter, cli.background, cli.runs
    );
    println!();
    let runs =
        bench::SweepRunner::new(cli.jobs).run_repeated(&cli.schemes, cli.runs, |&scheme, r| {
            run_once(&cli, scheme, derive_seed(cli.seed, r as u64))
        });
    let mut table = Table::new(vec![
        "scheme", "ICT mean", "min", "max", "rtos", "retx", "end",
    ]);
    let mut baseline_mean = None;
    for (&scheme, outcomes) in cli.schemes.iter().zip(&runs) {
        let icts: Vec<f64> = outcomes.iter().map(|&(ict, _, _, _)| ict).collect();
        let rtos: u64 = outcomes.iter().map(|&(_, rt, _, _)| rt).sum();
        let retx: u64 = outcomes.iter().map(|&(_, _, rx, _)| rx).sum();
        let end = reasons(outcomes);
        let summary = Summary::of(&icts);
        if scheme == Scheme::Baseline {
            baseline_mean = Some(summary.mean);
        }
        table.row(vec![
            scheme.label().to_string(),
            fmt_secs(summary.mean),
            fmt_secs(summary.min),
            fmt_secs(summary.max),
            (rtos / cli.runs as u64).to_string(),
            (retx / cli.runs as u64).to_string(),
            end.clone(),
        ]);
        println!(
            "JSON {}",
            serde_json::json!({
                "scheme": scheme.label(),
                "mean_secs": summary.mean,
                "min_secs": summary.min,
                "max_secs": summary.max,
                "terminated": end,
            })
        );
    }
    print!("{}", table.render());
    if let Some(base) = baseline_mean {
        println!();
        println!(
            "baseline mean: {} — reductions are relative to it",
            fmt_secs(base)
        );
    }
}
