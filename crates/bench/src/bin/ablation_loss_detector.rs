//! Ablation: reorder-tolerant loss detection without trimming (§5, FW#1).
//!
//! "The challenge lies in disambiguating reordered packets from lost
//! packets ... Are false positives or false negatives more fatal?"
//!
//! We synthesize packet streams with spraying-style reordering (each
//! packet's arrival displaced by a bounded random offset, modelling
//! equal-cost paths of slightly different queue depths) plus genuine
//! random loss, and sweep the detector's reorder threshold. Reported per
//! cell: recall (declared real losses), false positives (reordered
//! packets declared lost), and detection latency in packets.
//!
//! Run with: `cargo run --release -p bench --bin ablation_loss_detector [--quick]`

use bench::{banner, emit_json, RunOptions};
use dcsim::packet::FlowId;
use incast_core::lossdetect::{LossDetector, LossDetectorConfig};
use serde::Serialize;
use trace::{derive_seed, SplitMix64, Table};

#[derive(Serialize)]
struct Point {
    reorder_depth: usize,
    threshold: u32,
    recall: f64,
    false_positive_rate: f64,
}

/// Generates a stream of `n` sequences with bounded random displacement
/// (`depth`) and drop probability `loss`, returning (arrival order, lost).
fn synth_stream(n: u64, depth: usize, loss: f64, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = SplitMix64::new(seed);
    let mut lost = Vec::new();
    let mut kept = Vec::new();
    for seq in 0..n {
        if rng.next_f64() < loss && seq < n - 1 {
            lost.push(seq);
        } else {
            kept.push(seq);
        }
    }
    // Displacement: bubble each packet backward by up to `depth` slots.
    let mut arrival = kept.clone();
    if depth > 0 {
        for i in 0..arrival.len() {
            let back = rng.next_bounded(depth as u64 + 1) as usize;
            let j = i.saturating_sub(back);
            let v = arrival.remove(i);
            arrival.insert(j, v);
        }
    }
    (arrival, lost)
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: loss detector (FW#1)",
        "recall / false positives vs reorder threshold under spraying-style reordering",
    );
    let n: u64 = if opts.quick { 5_000 } else { 50_000 };
    let loss = 0.05;
    let depths: &[usize] = if opts.quick { &[4] } else { &[0, 2, 4, 8, 16] };
    let thresholds: &[u32] = &[1, 3, 8, 16, 32];

    // The synthetic streams are pure CPU work, one per (depth, threshold,
    // repetition) — fan them all out through the sweep runner too.
    let cells: Vec<(usize, u32)> = depths
        .iter()
        .flat_map(|&depth| thresholds.iter().map(move |&t| (depth, t)))
        .collect();
    let measured =
        opts.sweep_runner()
            .run_repeated(&cells, opts.runs, |&(depth, threshold), run| {
                let (arrival, lost) =
                    synth_stream(n, depth, loss, derive_seed(opts.seed, run as u64));
                // Watchdog off: this study isolates first-declaration
                // accuracy (re-NACKs are the detector-proxy ablation's
                // concern).
                let mut det = LossDetector::new(LossDetectorConfig {
                    reorder_threshold: threshold,
                    max_pending: 4096,
                    renack_after: None,
                    ..Default::default()
                });
                let mut declared = Vec::new();
                for &seq in &arrival {
                    declared.extend(det.observe(FlowId(0), seq).into_iter().map(|e| e.seq));
                }
                let true_hits = declared.iter().filter(|s| lost.contains(s)).count();
                let false_hits = declared.len() - true_hits;
                (
                    true_hits as f64 / lost.len().max(1) as f64,
                    false_hits as f64 / declared.len().max(1) as f64,
                    declared.len() as u64,
                )
            });

    let mut table = Table::new(vec![
        "reorder depth",
        "threshold",
        "recall",
        "FP rate",
        "declared",
    ]);
    for (&(depth, threshold), runs) in cells.iter().zip(&measured) {
        let recall_sum: f64 = runs.iter().map(|&(r, _, _)| r).sum();
        let fp_sum: f64 = runs.iter().map(|&(_, f, _)| f).sum();
        let declared_sum: u64 = runs.iter().map(|&(_, _, d)| d).sum();
        let recall = recall_sum / opts.runs as f64;
        let fp = fp_sum / opts.runs as f64;
        table.row(vec![
            depth.to_string(),
            threshold.to_string(),
            format!("{:.1}%", recall * 100.0),
            format!("{:.1}%", fp * 100.0),
            (declared_sum / opts.runs as u64).to_string(),
        ]);
        emit_json(
            "ablation_loss_detector",
            &Point {
                reorder_depth: depth,
                threshold,
                recall,
                false_positive_rate: fp,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("expected: low thresholds misfire under deep reordering (false");
    println!("positives -> spurious retransmits + window cuts); high thresholds");
    println!("delay detection. The knee sits near the spraying depth, which is");
    println!("why FW#1 ties the answer to routing and topology.");
}
