//! Ablation: the proxy schemes on an *unstructured* topology.
//!
//! §5 FW#1 ties loss detection to topology: "unstructured topology can
//! cause more reordered packets with varied-length paths". The random-
//! graph two-datacenter topology (`dcsim::topology::two_dc_unstructured`)
//! has exactly that property — equal-cost choices lead onto continuations
//! of genuinely different hop counts — so packet spraying reorders far
//! more than on the symmetric leaf–spine fabric. We run all four schemes
//! there and compare the detecting proxy's accuracy-sensitive behaviour
//! against the leaf–spine results.
//!
//! Run with: `cargo run --release -p bench --bin ablation_unstructured [--quick]`

use bench::{banner, emit_json, RunOptions};
use dcsim::prelude::*;
use incast_core::lossdetect::LossDetectorConfig;
use incast_core::scheme::{install_incast, IncastSpec, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::{derive_seed, Summary, Table};

#[derive(Serialize)]
struct Point {
    scheme: String,
    threshold: u32,
    mean_secs: f64,
}

const DEGREE: usize = 8;
const BYTES: u64 = 100_000_000;

fn run(scheme: Scheme, threshold: u32, seed: u64) -> f64 {
    let params = UnstructuredParams {
        switches_per_dc: 16,
        extra_links_per_dc: 24,
        hosts_per_dc: 32,
        gateways: 4,
        seed: derive_seed(seed, 0x7079),
        ..Default::default()
    };
    let mut params = params;
    // Trimming only for the Streamlined scheme, as in §4.1.
    params.dc_queue.trim = scheme == Scheme::ProxyStreamlined;
    let topo = two_dc_unstructured(&params);
    let mut sim = Simulator::new(topo, seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let mut spec = IncastSpec::new(dc0[..DEGREE].to_vec(), dc1[0], BYTES);
    if scheme.uses_proxy() {
        spec = spec.with_proxy(*dc0.last().expect("hosts"));
    }
    spec.detector = LossDetectorConfig {
        reorder_threshold: threshold,
        max_pending: 4096,
        ..Default::default()
    };
    let handle = install_incast(&mut sim, &spec, scheme);
    bench::expect_no_event_cap(
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600))),
        "unstructured-traffic ablation",
    );
    handle
        .completion(sim.metrics())
        .expect("incast completes")
        .as_secs_f64()
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: unstructured topology",
        "all schemes on a random-graph fabric with varied-length paths (degree 8, 100 MB)",
    );

    let mut table = Table::new(vec!["variant", "ICT mean", "min", "max"]);
    let mut cases: Vec<(String, Scheme, u32)> = vec![
        ("baseline".into(), Scheme::Baseline, 8),
        ("proxy (naive)".into(), Scheme::ProxyNaive, 8),
        (
            "proxy (streamlined, trimming)".into(),
            Scheme::ProxyStreamlined,
            8,
        ),
    ];
    let thresholds: &[u32] = if opts.quick { &[8] } else { &[3, 8, 32] };
    for &t in thresholds {
        cases.push((
            format!("proxy (detecting, thresh={t})"),
            Scheme::ProxyDetecting,
            t,
        ));
    }

    let sampled =
        opts.sweep_runner()
            .run_repeated(&cases, opts.runs, |&(_, scheme, threshold), r| {
                run(scheme, threshold, derive_seed(opts.seed, r as u64))
            });
    for ((label, _, threshold), samples) in cases.into_iter().zip(sampled) {
        let summary = Summary::of(&samples);
        table.row(vec![
            label.clone(),
            fmt_secs(summary.mean),
            fmt_secs(summary.min),
            fmt_secs(summary.max),
        ]);
        emit_json(
            "ablation_unstructured",
            &Point {
                scheme: label,
                threshold,
                mean_secs: summary.mean,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("reading: the proxy's ordering survives an arbitrary fabric; the");
    println!("varied-length paths raise reordering, which penalizes the");
    println!("detecting proxy's low thresholds more than on the symmetric");
    println!("leaf-spine (compare ablation_detector_proxy) — FW#1's topology");
    println!("coupling, measured.");
}
