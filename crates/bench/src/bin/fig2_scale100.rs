//! Figure 2 (Left) rerun at 100× incast scale, enabled by the
//! hybrid-fidelity engine (ISSUE 7).
//!
//! The paper's figure stops at 63 senders on a 512-host-per-DC fabric.
//! This sweep pushes the same protocol — 100 MB total, split equally,
//! 1 ms long-haul — to 800 senders (100× the paper's modal degree-8
//! point) on a 1024-host-per-DC fabric (8 spines × 16 leaves × 64
//! hosts/leaf), with hybrid fidelity advancing the uncontended fabric
//! analytically. The question it answers: where does the proxy's ICT
//! benefit saturate as the incast degree keeps growing?
//!
//! Run with: `cargo run --release -p bench --bin fig2_scale100 [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    degree: usize,
    scheme: String,
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
    reduction_vs_baseline: f64,
    express_saved_frac: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Figure 2 (Left) at 100x scale",
        "ICT vs degree to 800 senders (100 MB total, 1024-host DCs, hybrid fidelity)",
    );
    let degrees: &[usize] = if opts.quick {
        &[50, 200]
    } else {
        &[50, 100, 200, 400, 600, 800]
    };
    // Baseline vs Streamlined only: the Naive relay's per-connection
    // state scales poorly past a few hundred senders and the paper's
    // verdict on it is already in at degree 63.
    let schemes = [Scheme::Baseline, Scheme::ProxyStreamlined];

    let cells: Vec<(usize, Scheme)> = degrees
        .iter()
        .flat_map(|&degree| schemes.into_iter().map(move |scheme| (degree, scheme)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(degree, scheme)| ExperimentConfig {
            topo: dcsim::topology::TwoDcParams {
                spines_per_dc: 8,
                leaves_per_dc: 16,
                hosts_per_leaf: 64,
                ..Default::default()
            },
            scheme,
            degree,
            total_bytes: 100_000_000,
            seed: opts.seed,
            fidelity: true,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec![
        "degree",
        "scheme",
        "ICT mean",
        "min",
        "max",
        "vs baseline",
        "express saved",
    ]);
    let mut results = results.iter();
    for &degree in degrees {
        let mut baseline_mean = None;
        for scheme in schemes {
            let (summary, outcomes) = results.next().expect("one result per cell");
            let reduction = match baseline_mean {
                None => {
                    baseline_mean = Some(summary.mean);
                    0.0
                }
                Some(base) => (base - summary.mean) / base,
            };
            let (events, saved) = outcomes.iter().fold((0u64, 0u64), |(e, s), o| {
                (e + o.events, s + o.express_saved_events)
            });
            let saved_frac = saved as f64 / (events + saved) as f64;
            table.row(vec![
                degree.to_string(),
                scheme.label().to_string(),
                fmt_secs(summary.mean),
                fmt_secs(summary.min),
                fmt_secs(summary.max),
                if scheme == Scheme::Baseline {
                    "—".to_string()
                } else {
                    format!("{:+.1}%", -reduction * 100.0)
                },
                format!("{:.1}%", saved_frac * 100.0),
            ]);
            emit_json(
                "fig2_scale100",
                &Point {
                    degree,
                    scheme: scheme.label().to_string(),
                    mean_secs: summary.mean,
                    min_secs: summary.min,
                    max_secs: summary.max,
                    reduction_vs_baseline: reduction,
                    express_saved_frac: saved_frac,
                },
            );
        }
    }
    print!("{}", table.render());
}
