//! Ablation: the FW#1 detector-based proxy vs trimming and baseline.
//!
//! §5 Future Work #1 asks whether a proxy can track loss *without* switch
//! trimming support, and how much error reordering induces. This study
//! answers with the [`incast_core::proxy_detect::DetectingProxy`]: on a
//! drop-tail network (no trimming anywhere) the proxy infers losses from
//! sequence gaps and NACKs early. Swept across reorder thresholds and
//! path jitter (unequal equal-cost paths make spraying reorder, §5's
//! "topology" caveat), against two references: the trimming-based
//! Streamlined proxy (upper reference) and the no-proxy baseline (lower
//! reference).
//!
//! Run with: `cargo run --release -p bench --bin ablation_detector_proxy [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use dcsim::prelude::*;
use incast_core::lossdetect::LossDetectorConfig;
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    jitter: f64,
    variant: String,
    mean_secs: f64,
}

/// One table row per jitter level: display label, scheme, and (for the
/// detecting proxy) its detector configuration.
type Variant = (String, Scheme, Option<LossDetectorConfig>);

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: detector-based proxy (FW#1)",
        "loss inference vs trimming support (degree 8, 100 MB), across path jitter",
    );
    let jitters: &[f64] = if opts.quick {
        &[0.0]
    } else {
        &[0.0, 0.25, 0.5]
    };
    let thresholds: &[u32] = if opts.quick { &[8] } else { &[3, 8, 32] };

    // Per jitter level: the trimming reference, the detector at each
    // reorder threshold, then the baseline. Flatten into one grid so all
    // cells simulate in parallel; the "vs trimming" column only needs the
    // first result of each jitter group, available once the sweep is done.
    let mut variants: Vec<Variant> = Vec::new();
    variants.push((
        "streamlined (trimming)".into(),
        Scheme::ProxyStreamlined,
        None,
    ));
    for &threshold in thresholds {
        variants.push((
            format!("detecting (no trim, thresh={threshold})"),
            Scheme::ProxyDetecting,
            Some(LossDetectorConfig {
                reorder_threshold: threshold,
                max_pending: 4096,
                ..Default::default()
            }),
        ));
    }
    variants.push(("baseline (no proxy)".into(), Scheme::Baseline, None));

    let cells: Vec<(f64, &Variant)> = jitters
        .iter()
        .flat_map(|&jitter| variants.iter().map(move |v| (jitter, v)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(jitter, &(_, scheme, detector))| {
            let mut config = ExperimentConfig {
                scheme,
                degree: 8,
                total_bytes: 100_000_000,
                topo: TwoDcParams::default().with_path_jitter(jitter, opts.seed),
                seed: opts.seed,
                ..Default::default()
            };
            if let Some(d) = detector {
                config.detector = d;
            }
            config
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec!["path jitter", "variant", "ICT mean", "vs trimming"]);
    let mut results_it = cells.iter().zip(&results);
    for &jitter in jitters {
        let mut reference = None;
        for _ in &variants {
            let (&(_, (variant, _, _)), (summary, _)) =
                results_it.next().expect("one result per cell");
            let rel = match reference {
                None => {
                    reference = Some(summary.mean);
                    "1.00x".to_string()
                }
                Some(base) => format!("{:.2}x", summary.mean / base),
            };
            table.row(vec![
                format!("{jitter}"),
                variant.clone(),
                fmt_secs(summary.mean),
                rel,
            ]);
            emit_json(
                "ablation_detector_proxy",
                &Point {
                    jitter,
                    variant: variant.clone(),
                    mean_secs: summary.mean,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected: the detecting proxy recovers most of the trimming");
    println!("proxy's benefit on symmetric paths; jitter-induced reordering");
    println!("penalizes low thresholds (spurious NACKs) — the FW#1 trade-off.");
}
