//! Line-rate datapath load driver for the netproxy relays (ROADMAP
//! item 3): drives a [`ShardedRelay`] (or the sink directly) with the
//! multi-threaded open-loop [`BatchLoadGen`] and reports throughput plus
//! p50/p99/p999 one-way latency from the [`BatchSink`] histogram.
//!
//! ```console
//! $ cargo run --release -p bench --bin netproxy_load -- --variant streamlined --rate 0
//! ```
//!
//! Flags:
//!   --variant V      direct | naive | streamlined | detecting (default streamlined)
//!   --threads N      load-generator worker threads (default 2)
//!   --flows N        flows per worker thread (default 128)
//!   --shards N       relay shards, 0 = one per core (default 0)
//!   --sink-threads N sink reuseport threads (default 1)
//!   --rate N         aggregate pkts/sec, 0 = unthrottled (default 0)
//!   --duration-ms N  transmit window (default 1000)
//!   --trim F         fraction of datagrams sent as trimmed headers (default 0)
//!   --payload N      payload bytes per data datagram (default 64)
//!   --layer L        auto | mmsg | fallback (default auto)
//!   --smoke          CI mode: paced run of every variant on every
//!                    available layer, asserting zero unexplained loss
//!   --json           emit one JSON object per run instead of prose
//!
//! `--smoke` is what `scripts/check.sh` runs on every PR; the sweep in
//! `scripts/bench_netproxy.sh` uses the plain mode with `--json`.

use netproxy::loadgen::{BatchLoadGen, BatchSink};
use netproxy::shard::{RelayConfig, RelayKind, ShardedRelay};
use netproxy::streamlined::{decide, Action};
use netproxy::wire::WireHeader;
use netproxy::{RelayStats, SocketLayer};
// simlint: allow(hash-collections) — keyed lookups only, the relay never iterates the map
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Direct,
    Naive,
    Streamlined,
    Detecting,
    /// The seed's architecture: one thread, one datagram per
    /// `recv_from`/`send_to` round-trip, owned parsing, allocating NACK
    /// serialization. The baseline the batched datapath is held against.
    Single,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Direct => "direct",
            Variant::Naive => "naive",
            Variant::Streamlined => "streamlined",
            Variant::Detecting => "detecting",
            Variant::Single => "single",
        }
    }

    fn relay_kind(self) -> Option<RelayKind> {
        match self {
            Variant::Direct | Variant::Single => None,
            Variant::Naive => Some(RelayKind::Naive),
            Variant::Streamlined => Some(RelayKind::Streamlined),
            Variant::Detecting => Some(RelayKind::Detecting),
        }
    }
}

/// The pre-batching streamlined relay, verbatim in architecture: a
/// single blocking socket, one datagram per syscall pair, the owned
/// decode path, and a freshly allocated NACK per trimmed header.
struct SingleDatagramRelay {
    local_addr: SocketAddr,
    stats: Arc<RelayStats2>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Counters for [`SingleDatagramRelay`] (mirrors the sharded
/// `RelayStats` fields the accounting needs).
#[derive(Default)]
struct RelayStats2 {
    forwarded: AtomicU64,
    nacks: AtomicU64,
    reversed: AtomicU64,
    dropped: AtomicU64,
    send_errors: AtomicU64,
}

impl SingleDatagramRelay {
    fn start(receiver: SocketAddr) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let local_addr = socket.local_addr()?;
        let stats = Arc::new(RelayStats2::default());
        let st = stats.clone();
        let handle = std::thread::Builder::new()
            .name("single-relay".into())
            .spawn(move || {
                let mut buf = vec![0u8; 2048];
                // simlint: allow(hash-collections) — flow→sender lookups, never iterated
                let mut senders: HashMap<u64, SocketAddr> = HashMap::new();
                let mut idle = 0u32;
                loop {
                    let (n, from) = match socket.recv_from(&mut buf) {
                        Ok(r) => {
                            idle = 0;
                            r
                        }
                        Err(_) => {
                            idle += 1;
                            // The driver drops its handle and the stats Arc
                            // count reaches 1; exit once quiet.
                            if idle > 250 && Arc::strong_count(&st) == 1 {
                                break;
                            }
                            continue;
                        }
                    };
                    let datagram = &buf[..n];
                    match decide(datagram) {
                        Action::ForwardToReceiver => {
                            if let Ok((h, _)) = WireHeader::decode(datagram) {
                                senders.insert(h.flow, from);
                            }
                            match socket.send_to(datagram, receiver) {
                                // ordering: Relaxed — monotone stats counters, read
                                // by a snapshot that tolerates staleness.
                                Ok(_) => st.forwarded.fetch_add(1, Ordering::Relaxed),
                                Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        Action::NackToSender { flow, seq } => {
                            senders.insert(flow, from);
                            let nack = WireHeader::nack(flow, seq).encode(&[]);
                            match socket.send_to(&nack, from) {
                                // ordering: Relaxed — monotone stats counters.
                                Ok(_) => st.nacks.fetch_add(1, Ordering::Relaxed),
                                Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        Action::ForwardToSender => {
                            if let Ok((h, _)) = WireHeader::decode(datagram) {
                                if let Some(&sender) = senders.get(&h.flow) {
                                    match socket.send_to(datagram, sender) {
                                        // ordering: Relaxed — monotone stats counters.
                                        Ok(_) => st.reversed.fetch_add(1, Ordering::Relaxed),
                                        Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                                    };
                                } else {
                                    // ordering: Relaxed — monotone stats counter.
                                    st.dropped.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Action::Drop => {
                            // ordering: Relaxed — monotone stats counter.
                            st.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })?;
        Ok(SingleDatagramRelay {
            local_addr,
            stats,
            handle: Some(handle),
        })
    }

    fn stats(&self) -> RelayStats {
        RelayStats {
            // ordering: Relaxed — end-of-run snapshot; the relay thread has
            // quiesced by the time anyone reads these.
            forwarded: self.stats.forwarded.load(Ordering::Relaxed),
            nacks: self.stats.nacks.load(Ordering::Relaxed),
            reversed: self.stats.reversed.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            send_errors: self.stats.send_errors.load(Ordering::Relaxed),
            ..RelayStats::default()
        }
    }
}

impl Drop for SingleDatagramRelay {
    fn drop(&mut self) {
        // Detach; the thread exits on its idle check.
        drop(self.handle.take());
    }
}

#[derive(Debug, Clone, Copy)]
struct Cli {
    variant: Variant,
    threads: usize,
    flows: usize,
    shards: usize,
    sink_threads: usize,
    rate: u64,
    duration: Duration,
    trim: f64,
    payload: usize,
    layer: SocketLayer,
    smoke: bool,
    json: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            variant: Variant::Streamlined,
            threads: 2,
            flows: 128,
            shards: 0,
            sink_threads: 1,
            rate: 0,
            duration: Duration::from_secs(1),
            trim: 0.0,
            payload: 64,
            layer: SocketLayer::Auto,
            smoke: false,
            json: false,
        }
    }
}

fn parse_args() -> Cli {
    let mut cli = Cli::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let usage = "see the module docs: --variant --threads --flows --shards --sink-threads \
                 --rate --duration-ms --trim --payload --layer --smoke --json";
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("{arg} needs a value; {usage}"))
                .clone()
        };
        match arg.as_str() {
            "--variant" => {
                cli.variant = match value().as_str() {
                    "direct" => Variant::Direct,
                    "naive" => Variant::Naive,
                    "streamlined" => Variant::Streamlined,
                    "detecting" => Variant::Detecting,
                    "single" => Variant::Single,
                    other => panic!("unknown variant {other}; {usage}"),
                }
            }
            "--threads" => cli.threads = value().parse().expect("--threads N"),
            "--flows" => cli.flows = value().parse().expect("--flows N"),
            "--shards" => cli.shards = value().parse().expect("--shards N"),
            "--sink-threads" => cli.sink_threads = value().parse().expect("--sink-threads N"),
            "--rate" => cli.rate = value().parse().expect("--rate N"),
            "--duration-ms" => {
                cli.duration = Duration::from_millis(value().parse().expect("--duration-ms N"))
            }
            "--trim" => cli.trim = value().parse().expect("--trim F"),
            "--payload" => cli.payload = value().parse().expect("--payload N"),
            "--layer" => {
                cli.layer = match value().as_str() {
                    "auto" => SocketLayer::Auto,
                    "mmsg" => SocketLayer::Mmsg,
                    "fallback" => SocketLayer::Fallback,
                    other => panic!("unknown layer {other}; {usage}"),
                }
            }
            "--smoke" => cli.smoke = true,
            "--json" => cli.json = true,
            other => panic!("unknown argument {other}; {usage}"),
        }
    }
    cli
}

/// Retries `op` with bounded backoff while it fails with `AddrInUse`.
///
/// The smoke mode starts dozens of reuseport groups back to back; on
/// some kernels a just-closed group's port lingers briefly and an
/// unlucky ephemeral-port reuse fails with EADDRINUSE. That's a startup
/// race, not a datapath bug, so it gets a handful of spaced retries
/// before it is allowed to kill the run.
fn retry_addr_in_use<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    const ATTEMPTS: u32 = 5;
    let mut backoff = Duration::from_millis(10);
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && attempt + 1 < ATTEMPTS => {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff *= 2; // 10/20/40/80 ms, then give up
            }
            other => return other,
        }
    }
}

/// Outcome of one measured run, flattened for reporting.
struct RunResult {
    sent: u64,
    delivered: u64,
    trimmed: u64,
    nacks_received: u64,
    gen_send_errors: u64,
    achieved_pps: f64,
    sink_received: u64,
    sink_trimmed: u64,
    sink_malformed: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    relay: Option<netproxy::RelayStats>,
    relay_shards: usize,
    layer: &'static str,
}

/// Runs one loadgen → (relay →) sink pass and waits for in-flight
/// datagrams to settle before snapshotting counters.
fn run_once(cli: Cli) -> RunResult {
    // simlint: allow(wall-clock) — a throughput benchmark measures real elapsed time
    let epoch = Instant::now();
    let sink =
        retry_addr_in_use(|| BatchSink::start(cli.sink_threads, cli.layer, epoch)).expect("sink");
    let single = (cli.variant == Variant::Single).then(|| {
        retry_addr_in_use(|| SingleDatagramRelay::start(sink.local_addr())).expect("single relay")
    });
    let relay = cli.variant.relay_kind().map(|kind| {
        retry_addr_in_use(|| {
            ShardedRelay::start(
                SocketAddr::from(([127, 0, 0, 1], 0)),
                RelayConfig {
                    kind,
                    shards: cli.shards,
                    layer: cli.layer,
                    ..RelayConfig::streamlined(sink.local_addr())
                },
            )
        })
        .expect("relay")
    });
    let target = single
        .as_ref()
        .map(|s| s.local_addr)
        .or_else(|| relay.as_ref().map(|r| r.local_addr()))
        .unwrap_or_else(|| sink.local_addr());
    let gen = BatchLoadGen {
        threads: cli.threads,
        flows_per_thread: cli.flows,
        rate_pps: cli.rate,
        duration: cli.duration,
        trim_fraction: cli.trim,
        payload_len: cli.payload,
        layer: cli.layer,
        drain_grace: Duration::from_millis(10),
    };
    let report = gen.run(target, epoch).expect("loadgen run");

    // Let queued datagrams drain: stop once counters go quiet (or after
    // a 2 s grace for pathological stalls).
    // simlint: allow(wall-clock) — real-time drain deadline for live sockets
    let settle = Instant::now();
    let mut last = (0u64, 0u64);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let s = sink.stats();
        let now = (
            s.received + s.trimmed,
            relay
                .as_ref()
                .map(|r| r.stats().nacks)
                .or_else(|| single.as_ref().map(|r| r.stats().nacks))
                .unwrap_or(0),
        );
        if now == last || settle.elapsed() > Duration::from_secs(2) {
            break;
        }
        last = now;
    }

    let sink_stats = sink.stats();
    let hist = sink.recorder().snapshot();
    let q = |p: f64| {
        if hist.is_empty() {
            0.0
        } else {
            hist.quantile(p) as f64 / 1000.0
        }
    };
    RunResult {
        sent: report.sent_packets,
        delivered: report.delivered(),
        trimmed: report.trimmed_sent,
        nacks_received: report.nacks_received,
        gen_send_errors: report.send_errors,
        achieved_pps: report.achieved_pps(),
        sink_received: sink_stats.received,
        sink_trimmed: sink_stats.trimmed,
        sink_malformed: sink_stats.malformed,
        p50_us: q(0.50),
        p99_us: q(0.99),
        p999_us: q(0.999),
        relay: relay
            .as_ref()
            .map(|r| r.stats())
            .or_else(|| single.as_ref().map(|r| r.stats())),
        relay_shards: relay
            .as_ref()
            .map_or(usize::from(single.is_some()), |r| r.shards()),
        layer: if single.is_some() {
            "single"
        } else {
            cli.layer.resolved().name()
        },
    }
}

fn print_result(cli: Cli, r: &RunResult) {
    let relay = r.relay.unwrap_or_default();
    if cli.json {
        println!(
            "{{\"suite\":\"netproxy\",\"variant\":\"{}\",\"layer\":\"{}\",\"threads\":{},\"flows\":{},\"shards\":{},\"sink_threads\":{},\"rate_pps\":{},\"duration_ms\":{},\"trim\":{},\"payload\":{},\"sent\":{},\"delivered\":{},\"trimmed_sent\":{},\"nacks_received\":{},\"gen_send_errors\":{},\"achieved_pps\":{:.0},\"sink_received\":{},\"sink_trimmed\":{},\"sink_malformed\":{},\"p50_us\":{:.2},\"p99_us\":{:.2},\"p999_us\":{:.2},\"relay_forwarded\":{},\"relay_nacks\":{},\"relay_reversed\":{},\"relay_dropped\":{},\"relay_send_errors\":{},\"relay_batches\":{},\"relay_max_batch\":{},\"relay_shed_nacked\":{},\"relay_shed_dropped\":{},\"relay_nacks_coalesced\":{},\"relay_io_retries\":{}}}",
            cli.variant.name(),
            r.layer,
            cli.threads,
            cli.flows,
            r.relay_shards,
            cli.sink_threads,
            cli.rate,
            cli.duration.as_millis(),
            cli.trim,
            cli.payload,
            r.sent,
            r.delivered,
            r.trimmed,
            r.nacks_received,
            r.gen_send_errors,
            r.achieved_pps,
            r.sink_received,
            r.sink_trimmed,
            r.sink_malformed,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            relay.forwarded,
            relay.nacks,
            relay.reversed,
            relay.dropped,
            relay.send_errors,
            relay.batches,
            relay.max_batch,
            relay.shed_nacked,
            relay.shed_dropped,
            relay.nacks_coalesced,
            relay.io_retries,
        );
    } else {
        println!(
            "netproxy_load: {} via {} layer, {} gen threads x {} flows, {} shard(s)",
            cli.variant.name(),
            r.layer,
            cli.threads,
            cli.flows,
            r.relay_shards,
        );
        println!(
            "  {} sent ({} trimmed), {:.0} pkts/sec achieved, {} NACKs back, {} send errors",
            r.sent, r.trimmed, r.achieved_pps, r.nacks_received, r.gen_send_errors,
        );
        println!(
            "  sink: {} data + {} trimmed, one-way p50 {:.1}us p99 {:.1}us p999 {:.1}us",
            r.sink_received, r.sink_trimmed, r.p50_us, r.p99_us, r.p999_us,
        );
        if r.relay.is_some() {
            println!(
                "  relay: {} forwarded, {} nacks, {} dropped, {} send errors, max batch {}",
                relay.forwarded, relay.nacks, relay.dropped, relay.send_errors, relay.max_batch,
            );
        }
    }
}

/// Accounts for every datagram the generator delivered; returns an
/// error description when any are unexplained.
fn account(cli: Cli, r: &RunResult) -> Result<(), String> {
    let relay = r.relay.unwrap_or_default();
    let explained = match cli.variant {
        // Direct: everything lands at the sink (trims arrive as trimmed).
        Variant::Direct => r.sink_received + r.sink_trimmed,
        // Streamlined (batched or single-datagram baseline): data
        // forwarded, trims converted to NACKs, plus relay-level
        // drops/errors — and, when the shed ladder is armed, datagrams
        // it coalesced or dropped (counted, never silent).
        Variant::Streamlined | Variant::Single => {
            r.sink_received
                + relay.nacks
                + relay.dropped
                + relay.send_errors
                + relay.nacks_coalesced
                + relay.shed_dropped
        }
        // Naive and Detecting forward everything, trimmed included.
        Variant::Naive | Variant::Detecting => {
            r.sink_received
                + r.sink_trimmed
                + relay.dropped
                + relay.send_errors
                + relay.shed_dropped
        }
    };
    if explained != r.delivered {
        return Err(format!(
            "{} on {}: {} delivered but only {} explained (sink {} + trimmed-at-sink {}, relay nacks {}, dropped {}, send_errors {})",
            cli.variant.name(),
            r.layer,
            r.delivered,
            explained,
            r.sink_received,
            r.sink_trimmed,
            relay.nacks,
            relay.dropped,
            relay.send_errors,
        ));
    }
    if r.sink_malformed != 0 {
        return Err(format!(
            "{} on {}: sink saw {} malformed datagrams",
            cli.variant.name(),
            r.layer,
            r.sink_malformed
        ));
    }
    Ok(())
}

/// The CI smoke: a gentle paced run of every variant on every available
/// socket layer, a few thousand packets each, zero unexplained loss.
fn smoke(json: bool) {
    let layers: &[SocketLayer] = if cfg!(target_os = "linux") {
        &[SocketLayer::Mmsg, SocketLayer::Fallback]
    } else {
        &[SocketLayer::Fallback]
    };
    let variants = [
        Variant::Direct,
        Variant::Naive,
        Variant::Streamlined,
        Variant::Detecting,
        Variant::Single,
    ];
    let mut failures = Vec::new();
    for &layer in layers {
        for variant in variants {
            let cli = Cli {
                variant,
                layer,
                threads: 2,
                flows: 32,
                shards: 2,
                sink_threads: 1,
                rate: 20_000,
                duration: Duration::from_millis(250),
                // Trim only where the variant NACKs trimmed headers.
                trim: if matches!(variant, Variant::Streamlined | Variant::Single) {
                    0.2
                } else {
                    0.0
                },
                payload: 64,
                smoke: true,
                json,
            };
            let r = run_once(cli);
            print_result(cli, &r);
            if let Err(e) = account(cli, &r) {
                failures.push(e);
            }
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("netproxy_load smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("netproxy_load smoke: all variants/layers accounted for every packet");
}

fn main() {
    let cli = parse_args();
    if cli.smoke {
        smoke(cli.json);
        return;
    }
    let r = run_once(cli);
    print_result(cli, &r);
}
