//! Figure 4: per-packet latency CDF of the naive user-space proxy.
//!
//! §5: "Figure 4 shows the per-packet latency of our naive proxy design
//! implemented in user space, which captures the packet transmission time
//! from the TC hook to user space, user-space processing latency, and
//! back. The 99th percentile latency gets as high as 359.17us."
//!
//! Substitution (see DESIGN.md §3): we run the split-connection relay
//! over loopback TCP and measure per-chunk read→forward latency — the
//! same user-space traversal, minus the NIC. The load is the paper's
//! iperf shape, rate-scaled.
//!
//! Run with: `cargo run --release -p bench --bin fig4 [--quick]`

use bench::{banner, emit_json, RunOptions};
use netproxy::loadgen::{tcp_sink, TcpLoadGen};
use netproxy::NaiveProxy;
use serde::Serialize;
use std::time::Duration;
use trace::Table;

#[derive(Serialize)]
struct Point {
    quantile: f64,
    latency_us: f64,
}

#[tokio::main]
async fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Figure 4",
        "per-packet latency CDF of the naive user-space proxy (loopback testbed)",
    );
    let load = TcpLoadGen {
        rate_bps: 500_000_000,
        duration: Duration::from_secs(if opts.quick { 1 } else { 10 }),
        chunk: 16 * 1024,
    };

    let (sink, _counter) = tcp_sink().await.expect("sink");
    let proxy = NaiveProxy::start("127.0.0.1:0".parse().expect("addr"), sink)
        .await
        .expect("proxy");
    eprintln!(
        "driving {} Mbit/s for {:?} through the naive proxy ...",
        load.rate_bps / 1_000_000,
        load.duration
    );
    let stats = load.run(proxy.local_addr()).await.expect("load");
    tokio::time::sleep(Duration::from_millis(300)).await;

    let cdf = proxy.recorder().cdf_micros().expect("samples recorded");
    let mut table = Table::new(vec!["percentile", "latency (us)"]);
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999] {
        let v = cdf.quantile(q);
        table.row(vec![format!("p{:.1}", q * 100.0), format!("{v:.2}")]);
        emit_json(
            "fig4",
            &Point {
                quantile: q,
                latency_us: v,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("CDF plot points (latency_us, cumulative):");
    for (v, f) in cdf.plot_points(20) {
        println!("  {v:10.2}  {f:.3}");
    }
    println!();
    println!(
        "{} chunks relayed, {} samples; paper reports p99 = 359.17 us on its",
        stats.sent_packets,
        cdf.len()
    );
    println!("ConnectX-5 testbed — the point is the heavy user-space tail, not");
    println!("the absolute number.");
}
