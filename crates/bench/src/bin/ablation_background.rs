//! Ablation: does the proxy's benefit survive background traffic?
//!
//! §2 motivates the problem with busy production datacenters; §4 evaluates
//! on an otherwise idle network. Here the same degree-8, 100 MB incast
//! shares the two datacenters with web-search-style background flows
//! (heavy-tailed sizes, random pairs, staggered starts), at increasing
//! intensity.
//!
//! Run with: `cargo run --release -p bench --bin ablation_background [--quick]`

use bench::{banner, emit_json, RunOptions};
use dcsim::prelude::*;
use incast_core::experiment::{ExperimentConfig, TrimPolicy};
use incast_core::scheme::install_incast;
use incast_core::Scheme;
use serde::Serialize;
use trace::table::fmt_secs;
use trace::{derive_seed, Summary, Table};

#[derive(Serialize)]
struct Point {
    background_flows: usize,
    scheme: String,
    mean_secs: f64,
    reduction_vs_baseline: f64,
}

fn run_with_background(scheme: Scheme, background_flows: usize, seed: u64) -> f64 {
    let config = ExperimentConfig {
        scheme,
        degree: 8,
        total_bytes: 100_000_000,
        ..Default::default()
    };
    let params = config
        .topo
        .with_trim(TrimPolicy::SchemeDefault.enabled_for(scheme));
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let spec = config.placement(sim.topology());
    // Background endpoints: everything not in the incast.
    let mut hosts: Vec<HostId> = (0..sim.topology().host_count() as u32)
        .map(HostId)
        .collect();
    hosts.retain(|h| !spec.senders.contains(h) && *h != spec.receiver && Some(*h) != spec.proxy);
    if background_flows > 0 {
        BackgroundTraffic {
            flows: background_flows,
            sizes: FlowSizeDist::WebSearch,
            start_window: SimDuration::from_millis(10),
            hosts,
            seed: derive_seed(seed, 0xB6),
        }
        .install(&mut sim);
    }
    let handle = install_incast(&mut sim, &spec, scheme);
    bench::expect_no_event_cap(
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600))),
        "background-traffic ablation",
    );
    handle
        .completion(sim.metrics())
        .expect("incast completes")
        .as_secs_f64()
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: background traffic",
        "degree-8, 100 MB incast sharing the network with web-search-style flows",
    );
    let levels: &[usize] = if opts.quick {
        &[0, 128]
    } else {
        &[0, 64, 256, 512]
    };

    // Every (level × scheme × repetition) simulation is independent; fan
    // them all out through the sweep runner and aggregate in grid order.
    let cells: Vec<(usize, Scheme)> = levels
        .iter()
        .flat_map(|&flows| Scheme::ALL.into_iter().map(move |scheme| (flows, scheme)))
        .collect();
    let sampled = opts
        .sweep_runner()
        .run_repeated(&cells, opts.runs, |&(flows, scheme), r| {
            run_with_background(scheme, flows, derive_seed(opts.seed, r as u64))
        });

    let mut table = Table::new(vec![
        "background flows",
        "scheme",
        "ICT mean",
        "vs baseline",
    ]);
    let mut sampled = sampled.into_iter();
    for &flows in levels {
        let mut baseline_mean = None;
        for scheme in Scheme::ALL {
            let samples = sampled.next().expect("one sample set per cell");
            let summary = Summary::of(&samples);
            let reduction = match baseline_mean {
                None => {
                    baseline_mean = Some(summary.mean);
                    0.0
                }
                Some(base) => (base - summary.mean) / base,
            };
            table.row(vec![
                flows.to_string(),
                scheme.label().to_string(),
                fmt_secs(summary.mean),
                if scheme == Scheme::Baseline {
                    "—".to_string()
                } else {
                    format!("{:+.1}%", -reduction * 100.0)
                },
            ]);
            emit_json(
                "ablation_background",
                &Point {
                    background_flows: flows,
                    scheme: scheme.label().to_string(),
                    mean_secs: summary.mean,
                    reduction_vs_baseline: reduction,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected: background load slows everyone, but the ordering and");
    println!("the bulk of the reduction persist — the mechanism (feedback-loop");
    println!("length) is orthogonal to how busy the fabric is.");
}
