//! Fleet-scale throughput benchmark for the hybrid-fidelity sharded
//! engine: a fleet of inter-datacenter pods, each running a cross-DC
//! incast, partitioned one shard per datacenter and driven by
//! [`FleetSim`].
//!
//! The headline number is **effective packet-events per second**:
//! `(events processed + events elided by the express path) / wall-clock`.
//! The repo's perf target (ISSUE 7) is ≥ 10M effective events/sec; the
//! result is recorded in `BENCH_fleet.json` by `scripts/bench.sh`, which
//! sweeps `--threads` across the machine's cores.
//!
//! ```console
//! $ cargo run --release -p bench --bin fleet -- --pods 8 --threads 1
//! ```
//!
//! Flags:
//!   --pods N      independent two-DC pods in the fleet (default 8)
//!   --degree N    incast senders per pod (default 16)
//!   --background N  intra-DC background mice per datacenter (default 256)
//!   --mb N        megabytes per sender (default 2)
//!   --threads N   worker threads for the windowed run (default 1)
//!   --seed N      fleet seed (default 7)
//!   --no-fidelity run at full packet fidelity (engine comparison)
//!   --quick       small configuration for smoke tests
//!   --json        emit a single JSON object instead of prose

use dcsim::prelude::*;
use dcsim::topology::{LinkProps, TopologyBuilder, TwoDcParams};

#[derive(Debug, Clone)]
struct Cli {
    pods: usize,
    degree: usize,
    background: usize,
    mb: u64,
    threads: usize,
    seed: u64,
    fidelity: bool,
    json: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            pods: 8,
            degree: 16,
            background: 256,
            mb: 2,
            threads: 1,
            seed: 7,
            fidelity: true,
            json: false,
        }
    }
}

fn parse_args() -> Cli {
    let mut cli = Cli::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let usage =
        "see the module docs: --pods --degree --mb --threads --seed --no-fidelity --quick --json";
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("{arg} needs a value; {usage}"))
                .clone()
        };
        match arg.as_str() {
            "--pods" => cli.pods = value().parse().expect("--pods N"),
            "--degree" => cli.degree = value().parse().expect("--degree N"),
            "--background" => cli.background = value().parse().expect("--background N"),
            "--mb" => cli.mb = value().parse().expect("--mb N"),
            "--threads" => cli.threads = value().parse().expect("--threads N"),
            "--seed" => cli.seed = value().parse().expect("--seed N"),
            "--no-fidelity" => cli.fidelity = false,
            "--quick" => {
                cli.pods = 2;
                cli.degree = 8;
                cli.background = 16;
                cli.mb = 1;
            }
            "--json" => cli.json = true,
            other => panic!("unknown argument {other}; {usage}"),
        }
    }
    cli
}

/// Pod shape: each pod is a paper-scale two-DC leaf-spine pair. The
/// palette of link/queue parameters comes from [`TwoDcParams`] so pods
/// match the §4.1 fabric (100 Gbps links, 1 µs intra-DC, 1 ms long-haul).
const SPINES: usize = 2;
const LEAVES: usize = 4;
const HOSTS_PER_LEAF: usize = 5;

/// Builds a fleet of `pods` two-DC pods in one topology. Pod `i`'s
/// datacenters get dc ids `2i` and `2i + 1`, so [`FleetSim::new`]'s
/// per-datacenter partition yields `2 * pods` shards. Each pod's backbone
/// router is assigned to its DC0 so the only cross-shard links are
/// long-haul. Backbone routers of consecutive pods are chained with
/// long-haul links purely for reachability (routes must exist fleet-wide;
/// no flow crosses pods, and shortest paths never detour through the
/// chain), which also keeps the fleet lookahead at the WAN latency.
fn build_fleet(pods: usize) -> (Topology, Vec<Vec<HostId>>) {
    let p = TwoDcParams::small_test();
    let mut b = TopologyBuilder::new();
    let mut pod_hosts = Vec::with_capacity(pods);
    let mut backbones = Vec::with_capacity(pods);
    for pod in 0..pods as u32 {
        let dcs = [2 * pod, 2 * pod + 1];
        let mut spines = vec![Vec::new(); 2];
        let mut hosts = Vec::new();
        for (side, &dc) in dcs.iter().enumerate() {
            let leaves: Vec<_> = (0..LEAVES)
                .map(|_| b.add_switch(NodeRole::Leaf, Some(dc)))
                .collect();
            spines[side] = (0..SPINES)
                .map(|_| b.add_switch(NodeRole::Spine, Some(dc)))
                .collect();
            for &leaf in &leaves {
                for _ in 0..HOSTS_PER_LEAF {
                    let h = b.add_host(Some(dc));
                    hosts.push(h);
                    b.add_duplex(b.host_node(h), leaf, p.dc_link, p.host_queue, p.dc_queue);
                }
                for &spine in &spines[side] {
                    b.add_duplex(leaf, spine, p.dc_link, p.dc_queue, p.dc_queue);
                }
            }
        }
        // One backbone router per spine pair, owned by the pod's DC0 shard.
        let mut pod_bbs = Vec::new();
        for (&s0, &s1) in spines[0].iter().zip(&spines[1]) {
            let bb = b.add_switch(NodeRole::Backbone, Some(dcs[0]));
            b.add_duplex(s0, bb, p.wan_link, p.dc_queue, p.backbone_queue);
            b.add_duplex(s1, bb, p.wan_link, p.dc_queue, p.backbone_queue);
            pod_bbs.push(bb);
        }
        backbones.push(pod_bbs);
        pod_hosts.push(hosts);
    }
    for w in backbones.windows(2) {
        b.add_duplex(
            w[0][0],
            w[1][0],
            LinkProps::long_haul(),
            TwoDcParams::small_test().backbone_queue,
            TwoDcParams::small_test().backbone_queue,
        );
    }
    (b.build(), pod_hosts)
}

fn main() {
    let cli = parse_args();
    let hosts_per_dc = LEAVES * HOSTS_PER_LEAF;
    assert!(
        cli.degree < hosts_per_dc,
        "--degree must leave the DC0 hosts distinct (max {})",
        hosts_per_dc - 1
    );
    let (topo, pod_hosts) = build_fleet(cli.pods);
    let mut fleet = FleetSim::new(topo, cli.seed);
    fleet.set_threads(cli.threads);
    fleet.set_event_cap(u64::MAX);
    if cli.fidelity {
        fleet.set_fidelity(FidelityConfig::default());
    }
    let mut flows = Vec::new();
    for (pod, hosts) in pod_hosts.iter().enumerate() {
        // Cross-DC incast: `degree` DC0 senders converge on one DC1 host.
        let receiver = hosts[hosts_per_dc];
        if cli.fidelity {
            let tor = fleet.topology().down_tor_port(receiver);
            fleet.pin_hot_port(tor);
        }
        for (s, &src) in hosts.iter().enumerate().take(cli.degree) {
            let spec = FlowSpec::new(src, receiver, cli.mb * 1_000_000);
            // Stagger pods slightly so windows are not lockstep-identical.
            let start = SimTime(pod as u64 * 50_000_000 + s as u64 * 1_000_000);
            flows.push(fleet.install_flow(spec, start));
        }
        // Intra-DC background mice: short transfers staggered in time so
        // the fabric between incast hotspots stays mostly uncontended —
        // the regime the express path is built for. 256 KB at 100 Gbps is
        // ~20 us of wire time against a 50 us stagger, so roughly one
        // mouse is active per datacenter at any instant.
        for side in 0..2 {
            let dc = &hosts[side * hosts_per_dc..(side + 1) * hosts_per_dc];
            for i in 0..cli.background {
                // Offset 7 is coprime to the 20-host DC, so src and dst
                // always land on different leaves and never collide with
                // the pod's incast receiver (dc[0] in DC1 is skipped).
                let src = dc[(i + 1) % hosts_per_dc];
                let dst = dc[(i + 8) % hosts_per_dc];
                let spec = FlowSpec::new(src, dst, 256_000);
                let start = SimTime(pod as u64 * 50_000_000 + i as u64 * 50_000_000);
                flows.push(fleet.install_flow(spec, start));
            }
        }
    }
    // simlint: allow(wall-clock) — a throughput benchmark measures real elapsed time
    let wall = std::time::Instant::now();
    let report = fleet.run(None);
    let wall_secs = wall.elapsed().as_secs_f64();
    assert_eq!(report.stop, StopReason::Idle, "fleet did not drain");
    let completed = flows
        .iter()
        .filter(|f| fleet.completion(**f).is_some())
        .count();
    assert_eq!(completed, flows.len(), "not all flows completed");
    let effective = report.events + report.express.saved_events;
    let raw_rate = report.events as f64 / wall_secs;
    let effective_rate = effective as f64 / wall_secs;
    if cli.json {
        println!(
            "{{\"suite\":\"fleet\",\"pods\":{},\"shards\":{},\"threads\":{},\"degree\":{},\"background_per_dc\":{},\"mb_per_sender\":{},\"fidelity\":{},\"seed\":{},\"flows\":{},\"events\":{},\"saved_events\":{},\"effective_events\":{},\"express_deferrals\":{},\"windows\":{},\"exchanged\":{},\"end_time_secs\":{:.6},\"wall_secs\":{:.3},\"events_per_sec\":{:.0},\"effective_events_per_sec\":{:.0}}}",
            cli.pods,
            fleet.num_shards(),
            cli.threads,
            cli.degree,
            cli.background,
            cli.mb,
            cli.fidelity,
            cli.seed,
            flows.len(),
            report.events,
            report.express.saved_events,
            effective,
            report.express.deferrals,
            report.windows,
            report.exchanged,
            report.end_time.0 as f64 / 1e12,
            wall_secs,
            raw_rate,
            effective_rate,
        );
    } else {
        println!(
            "fleet: {} pods ({} shards, {} threads), {} flows of {} MB, fidelity {}",
            cli.pods,
            fleet.num_shards(),
            cli.threads,
            flows.len(),
            cli.mb,
            if cli.fidelity { "hybrid" } else { "full" },
        );
        println!(
            "  {} events + {} saved = {} effective in {:.3}s wall ({} windows, {} cross-shard packets)",
            report.events, report.express.saved_events, effective, wall_secs,
            report.windows, report.exchanged,
        );
        println!(
            "  {:.2}M events/sec raw, {:.2}M events/sec effective",
            raw_rate / 1e6,
            effective_rate / 1e6,
        );
    }
}
