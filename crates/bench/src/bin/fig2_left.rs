//! Figure 2 (Left): incast completion time vs incast degree.
//!
//! §4.2: "we fix the total incast size to 100MB and vary the number of
//! incast senders. The total traffic is split equally among all senders."
//! Each point is 5 seeded runs, reported as mean (min–max), per the
//! paper's protocol.
//!
//! Run with: `cargo run --release -p bench --bin fig2_left [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    degree: usize,
    scheme: String,
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
    reduction_vs_baseline: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Figure 2 (Left)",
        "incast completion time vs degree (100 MB total, 1 ms long-haul links)",
    );
    let degrees: &[usize] = if opts.quick {
        &[4, 16]
    } else {
        &[2, 4, 8, 16, 32, 63]
    };

    // Simulate the whole (degree × scheme) grid in parallel, then walk
    // the results in grid order to build the report.
    let cells: Vec<(usize, Scheme)> = degrees
        .iter()
        .flat_map(|&degree| Scheme::ALL.into_iter().map(move |scheme| (degree, scheme)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(degree, scheme)| ExperimentConfig {
            scheme,
            degree,
            total_bytes: 100_000_000,
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec![
        "degree",
        "scheme",
        "ICT mean",
        "min",
        "max",
        "vs baseline",
    ]);
    let mut naive_reductions = Vec::new();
    let mut streamlined_reductions = Vec::new();

    let mut results = results.iter();
    for &degree in degrees {
        let mut baseline_mean = None;
        for scheme in Scheme::ALL {
            let (summary, _) = results.next().expect("one result per cell");
            let reduction = match baseline_mean {
                None => {
                    baseline_mean = Some(summary.mean);
                    0.0
                }
                Some(base) => (base - summary.mean) / base,
            };
            match scheme {
                Scheme::ProxyNaive => naive_reductions.push(reduction),
                Scheme::ProxyStreamlined => streamlined_reductions.push(reduction),
                _ => {}
            }
            table.row(vec![
                degree.to_string(),
                scheme.label().to_string(),
                fmt_secs(summary.mean),
                fmt_secs(summary.min),
                fmt_secs(summary.max),
                if scheme == Scheme::Baseline {
                    "—".to_string()
                } else {
                    format!("{:+.1}%", -reduction * 100.0)
                },
            ]);
            emit_json(
                "fig2_left",
                &Point {
                    degree,
                    scheme: scheme.label().to_string(),
                    mean_secs: summary.mean,
                    min_secs: summary.min,
                    max_secs: summary.max,
                    reduction_vs_baseline: reduction,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!(
        "average ICT reduction: Naive {:.1}% | Streamlined {:.1}%   (paper: 75.67% | 70.60%)",
        avg(&naive_reductions),
        avg(&streamlined_reductions)
    );
}
