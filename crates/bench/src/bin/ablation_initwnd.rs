//! Ablation: initial-window sensitivity (§2's first-RTT overload).
//!
//! "Such aggressiveness is not rarely seen in incast senders that are
//! eager to push out all traffic and thus set their initial sending rates
//! proportional to BDP. Hence, they can severely congest the network just
//! with their first-RTT traffic."
//!
//! We sweep the initial window from 1/8 BDP to 2 BDP for the Baseline and
//! Streamlined schemes: small windows protect the baseline (at the cost
//! of slow ramp-up for everything else), large windows devastate it; the
//! proxy is insensitive because its feedback loop tames any start.
//!
//! Run with: `cargo run --release -p bench --bin ablation_initwnd [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    iw_scale: f64,
    scheme: String,
    mean_secs: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: initial window",
        "ICT vs initial-window scale (degree 8, 100 MB; 1.0 = the paper's 1 BDP)",
    );
    let scales: &[f64] = if opts.quick {
        &[0.25, 1.0]
    } else {
        &[0.01, 0.05, 0.25, 1.0, 2.0]
    };

    let cells: Vec<(f64, Scheme)> = scales
        .iter()
        .flat_map(|&iw_scale| {
            [Scheme::Baseline, Scheme::ProxyStreamlined]
                .into_iter()
                .map(move |scheme| (iw_scale, scheme))
        })
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(iw_scale, scheme)| ExperimentConfig {
            scheme,
            degree: 8,
            total_bytes: 100_000_000,
            iw_scale,
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec!["IW scale", "scheme", "ICT mean"]);
    for (&(iw_scale, scheme), (summary, _)) in cells.iter().zip(&results) {
        table.row(vec![
            format!("{iw_scale} BDP"),
            scheme.label().to_string(),
            fmt_secs(summary.mean),
        ]);
        emit_json(
            "ablation_initwnd",
            &Point {
                iw_scale,
                scheme: scheme.label().to_string(),
                mean_secs: summary.mean,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("measured shape: IW tuning cannot fix inter-DC incast. Tiny windows");
    println!("(<= 0.05 BDP) avoid the collapse but ramp-limit *both* schemes");
    println!("(every increase costs a long-haul RTT); from ~0.25 BDP up the");
    println!("baseline's first-RTT burst overloads the receiver regardless (the");
    println!("burst is flow-size-capped), while the proxy stays ~12-14 ms across");
    println!("the whole sweep — it removes the initial-window dilemma entirely.");
}
