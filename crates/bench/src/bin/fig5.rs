//! Figure 5: streamlined-proxy processing overhead, lower bound vs upper
//! bound.
//!
//! §5: "we measure the lower bound (including runtime of eBPF bytecode
//! without kernel overhead from NIC to TC) and upper bound (including
//! proxy processing and forwarding in addition to packet-to-wire,
//! physical transmission, packet reception) of the processing overhead.
//! The median lower-bound overhead of merely 0.42us highlights the
//! potential of having an eBPF-based proxy on critical path. ... The
//! disproportionally large upper-bound overhead, with a median of
//! 325.92us, highlights the minute impact of the proxy logic itself."
//!
//! Substitution (DESIGN.md §3): the lower bound is the runtime of the
//! pure decision function [`netproxy::decide`] (the entire critical-path
//! logic, our eBPF-bytecode analogue), sampled per packet; the upper
//! bound is the same logic behind real UDP sockets over loopback —
//! through the full host network stack. Both distributions come from the
//! same load (data + trimmed mix from the virtual trimming switch).
//!
//! Run with: `cargo run --release -p bench --bin fig5 [--quick]`

use bench::{banner, emit_json, RunOptions};
use netproxy::loadgen::UdpLoadGen;
use netproxy::wire::WireHeader;
use netproxy::{decide, Action, StreamlinedUdpProxy};
use serde::Serialize;
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;
use trace::{Cdf, LatencyRecorder, SplitMix64, Table};

#[derive(Serialize)]
struct Point {
    bound: String,
    quantile: f64,
    latency_us: f64,
}

/// Lower bound: per-packet runtime of the decision logic alone, over the
/// same data/trimmed mix the live proxy sees. One timed call per sample
/// (like per-packet eBPF instrumentation).
fn lower_bound_cdf(samples: usize) -> Cdf {
    let recorder = LatencyRecorder::new();
    let data = WireHeader::data(1, 1, 1000).encode(&vec![0u8; 1000]);
    let trimmed = WireHeader::trimmed(1, 2).encode(&[]);
    let ack = WireHeader::ack(1, 3).encode(&[]);
    let mut rng = SplitMix64::new(7);
    let mut sink = 0u64;
    for _ in 0..samples {
        let wire = match rng.next_bounded(10) {
            0..=1 => &trimmed,
            2 => &ack,
            _ => &data,
        };
        // simlint: allow(wall-clock) — measures real eBPF-datapath decision latency
        let start = Instant::now();
        let action = decide(wire);
        let nanos = start.elapsed().as_nanos() as u64;
        recorder.record_nanos(nanos);
        sink += match action {
            Action::ForwardToReceiver => 1,
            Action::NackToSender { seq, .. } => seq,
            Action::ForwardToSender => 2,
            Action::Drop => 0,
        };
    }
    assert!(sink > 0, "keep the optimizer honest");
    recorder.cdf_micros().expect("samples")
}

/// Upper bound: the same decisions behind real UDP sockets (full stack).
async fn upper_bound_cdf(duration: Duration) -> Cdf {
    let receiver = UdpSocket::bind("127.0.0.1:0").await.expect("receiver");
    let recv_addr = receiver.local_addr().expect("addr");
    tokio::spawn(async move {
        let mut buf = [0u8; 2048];
        while receiver.recv_from(&mut buf).await.is_ok() {}
    });
    let proxy = StreamlinedUdpProxy::start("127.0.0.1:0".parse().expect("addr"), recv_addr)
        .await
        .expect("proxy");
    let sender = UdpSocket::bind("127.0.0.1:0").await.expect("sender");
    // Drain NACKs so the sender-side kernel buffer doesn't fill.
    let load = UdpLoadGen {
        flow: 1,
        rate_bps: 200_000_000,
        duration,
        switch_rate_bps: 160_000_000,
        switch_buffer_bytes: 256 * 1024,
    };
    eprintln!(
        "driving {} Mbit/s of datagrams (with virtual trimming) for {duration:?} ...",
        load.rate_bps / 1_000_000
    );
    load.run(&sender, proxy.local_addr()).await.expect("load");
    tokio::time::sleep(Duration::from_millis(300)).await;
    proxy.recorder().cdf_micros().expect("samples")
}

#[tokio::main]
async fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Figure 5",
        "streamlined proxy overhead: decision-logic lower bound vs through-stack upper bound",
    );
    let lower = lower_bound_cdf(if opts.quick { 200_000 } else { 2_000_000 });
    let upper = upper_bound_cdf(Duration::from_secs(if opts.quick { 1 } else { 10 })).await;

    let mut table = Table::new(vec!["percentile", "lower bound (us)", "upper bound (us)"]);
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
        table.row(vec![
            format!("p{:.0}", q * 100.0),
            format!("{:.3}", lower.quantile(q)),
            format!("{:.2}", upper.quantile(q)),
        ]);
        emit_json(
            "fig5",
            &Point {
                bound: "lower".into(),
                quantile: q,
                latency_us: lower.quantile(q),
            },
        );
        emit_json(
            "fig5",
            &Point {
                bound: "upper".into(),
                quantile: q,
                latency_us: upper.quantile(q),
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!(
        "median lower bound {:.3} us vs median upper bound {:.2} us ({}x apart)",
        lower.median(),
        upper.median(),
        (upper.median() / lower.median()).round()
    );
    println!("paper: 0.42 us vs 325.92 us — the proxy logic is negligible next");
    println!("to stack traversal, hence the push toward eBPF/XDP/NIC offload.");
}
