//! Figure 2 (Right): incast completion time vs incast size.
//!
//! §4.2: "we fix the incast degree to 4 and vary the total amount of
//! incast traffic. Both proxy schemes demonstrate significant incast
//! latency reduction compared to the baseline for any incast larger than
//! 20MB ... In the case of the 20MB-incast ... all three schemes are on
//! par and there is no benefit using a proxy."
//!
//! Run with: `cargo run --release -p bench --bin fig2_right [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::{fmt_bytes, fmt_secs};
use trace::Table;

#[derive(Serialize)]
struct Point {
    total_mb: u64,
    scheme: String,
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
    reduction_vs_baseline: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Figure 2 (Right)",
        "incast completion time vs size (degree 4, 1 ms long-haul links)",
    );
    let sizes_mb: &[u64] = if opts.quick {
        &[20, 100]
    } else {
        &[20, 40, 60, 100, 150, 200]
    };

    // Simulate the whole (size × scheme) grid in parallel, then walk the
    // results in grid order to build the report.
    let cells: Vec<(u64, Scheme)> = sizes_mb
        .iter()
        .flat_map(|&mb| Scheme::ALL.into_iter().map(move |scheme| (mb, scheme)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(mb, scheme)| ExperimentConfig {
            scheme,
            degree: 4,
            total_bytes: mb * 1_000_000,
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec![
        "size",
        "scheme",
        "ICT mean",
        "min",
        "max",
        "vs baseline",
    ]);
    let mut naive_reductions = Vec::new();
    let mut streamlined_reductions = Vec::new();

    let mut results = results.iter();
    for &mb in sizes_mb {
        let mut baseline_mean = None;
        for scheme in Scheme::ALL {
            let (summary, _) = results.next().expect("one result per cell");
            let reduction = match baseline_mean {
                None => {
                    baseline_mean = Some(summary.mean);
                    0.0
                }
                Some(base) => (base - summary.mean) / base,
            };
            match scheme {
                Scheme::ProxyNaive => naive_reductions.push(reduction),
                Scheme::ProxyStreamlined => streamlined_reductions.push(reduction),
                _ => {}
            }
            table.row(vec![
                fmt_bytes(mb * 1_000_000),
                scheme.label().to_string(),
                fmt_secs(summary.mean),
                fmt_secs(summary.min),
                fmt_secs(summary.max),
                if scheme == Scheme::Baseline {
                    "—".to_string()
                } else {
                    format!("{:+.1}%", -reduction * 100.0)
                },
            ]);
            emit_json(
                "fig2_right",
                &Point {
                    total_mb: mb,
                    scheme: scheme.label().to_string(),
                    mean_secs: summary.mean,
                    min_secs: summary.min,
                    max_secs: summary.max,
                    reduction_vs_baseline: reduction,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!(
        "average ICT reduction: Naive {:.1}% | Streamlined {:.1}%   (paper: 57.08% | 53.60%)",
        avg(&naive_reductions),
        avg(&streamlined_reductions)
    );
    println!("expected shape: all three on par at 20 MB; proxies win beyond it.");
}
