//! Chaos fuzzer driver: random fault-laden incast scenarios under the
//! invariant auditor, with shrinking and replayable repro files.
//!
//! ```text
//! fuzz [--control-plane] [--count N] [--start-seed S] [--jobs J]
//!      [--out DIR] [--shrink-budget N] [--replay FILE]
//! ```
//!
//! Campaign mode (default): generates and runs `--count` scenarios from
//! consecutive fuzz seeds. Every failure (panic, invariant violation,
//! event-cap livelock) is shrunk to a minimal scenario that fails the
//! same way and written to `--out` as a JSON repro file. Exits non-zero
//! when any scenario failed. With `--control-plane` the campaign runs
//! the sharded-orchestrator fuzzer ([`bench::cpfuzz`]) instead of the
//! full-simulator one: shard crashes mid-incast, stale placements, and
//! gossip delayed past lease expiry, checked against a lease-lifecycle
//! model and the lease ledger.
//!
//! Replay mode (`--replay FILE`): loads a repro file, runs its scenario
//! **twice**, checks the two runs are identical (determinism) and that
//! the outcome matches the file's `expect` field (`"clean"` or a failure
//! kind). The fuzzer family is auto-detected from the file's `"type"`
//! tag, so one replay loop covers both. Exits non-zero on mismatch or
//! divergence.

use bench::cpfuzz;
use bench::fuzz::{
    check_replay, failure_kind, run_campaign, Finding, ReproFile, Scenario, DEFAULT_SHRINK_BUDGET,
};

#[derive(Debug, Clone)]
struct Cli {
    control_plane: bool,
    count: u64,
    start_seed: u64,
    jobs: usize,
    out: String,
    shrink_budget: usize,
    replay: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            control_plane: false,
            count: 500,
            start_seed: 1,
            jobs: 0,
            out: "target/fuzz-repros".to_string(),
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            replay: None,
        }
    }
}

fn parse_args() -> Cli {
    let mut cli = Cli::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let usage = "usage: fuzz [--control-plane] [--count N] [--start-seed S] [--jobs J] \
                 [--out DIR] [--shrink-budget N] [--replay FILE]";
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("{arg} needs a value; {usage}"))
                .clone()
        };
        match arg.as_str() {
            "--control-plane" => cli.control_plane = true,
            "--count" => cli.count = value().parse().expect("--count: integer"),
            "--start-seed" => cli.start_seed = value().parse().expect("--start-seed: integer"),
            "--jobs" => cli.jobs = value().parse().expect("--jobs: integer"),
            "--out" => cli.out = value(),
            "--shrink-budget" => {
                cli.shrink_budget = value().parse().expect("--shrink-budget: integer")
            }
            "--replay" => cli.replay = Some(value()),
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; {usage}"),
        }
    }
    cli
}

fn describe(sc: &Scenario) -> String {
    format!(
        "scheme={:?} transport={:?} degree={} bytes={} topo={}x{}x{} bg={} faults={}w/{}i/{}c",
        sc.scheme,
        sc.transport,
        sc.degree,
        sc.total_bytes,
        sc.spines_per_dc,
        sc.leaves_per_dc,
        sc.hosts_per_leaf,
        sc.background_flows,
        sc.faults.link_windows.len(),
        sc.faults.impairments.len(),
        sc.faults.crashes.len(),
    )
}

fn describe_cp(sc: &cpfuzz::CpScenario) -> String {
    format!(
        "shards={} candidates={} incasts={} ttl={}us heartbeat={}us \
         suspect={}us gossip_delay={}us dup_release_every={} crashes={}",
        sc.shards,
        sc.candidates,
        sc.incasts,
        sc.lease_ttl_us,
        sc.heartbeat_us,
        sc.suspect_after_us,
        sc.gossip_delay_us,
        sc.double_release_every,
        sc.faults.shard_crashes.len(),
    )
}

fn replay_cp(path: &str, text: &str) -> i32 {
    let repro = match cpfuzz::CpReproFile::from_json(text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fuzz: {path} is tagged control-plane but malformed: {e}");
            return 2;
        }
    };
    println!("replaying {path} (control-plane)");
    println!("  {}", describe_cp(&repro.scenario));
    if !repro.note.is_empty() {
        println!("  note: {}", repro.note);
    }
    let (outcome, deterministic) = cpfuzz::check_replay(&repro.scenario);
    println!(
        "  outcome: ops={} stats={:?} violation={:?} panic={:?}",
        outcome.ops, outcome.stats, outcome.violation, outcome.panic
    );
    if !deterministic {
        eprintln!("fuzz: REPLAY DIVERGED — two runs of the same scenario differed");
        return 1;
    }
    println!("  deterministic: two consecutive runs identical");
    if repro.matches(&outcome) {
        println!("  expectation {:?}: satisfied", repro.expect);
        0
    } else {
        eprintln!(
            "fuzz: expectation {:?} NOT met (observed {:?})",
            repro.expect,
            cpfuzz::failure_kind(&outcome).as_deref().unwrap_or("clean")
        );
        1
    }
}

fn replay_file(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fuzz: cannot read {path}: {e}");
            return 2;
        }
    };
    if cpfuzz::is_control_plane_repro(&text) {
        return replay_cp(path, &text);
    }
    // Accept a full repro file or a bare scenario.
    let (repro, bare) = match ReproFile::from_json(&text) {
        Ok(r) => (r, false),
        Err(repro_err) => {
            match Scenario::from_json(&text) {
                Ok(sc) => (
                    ReproFile {
                        found_with_seed: 0,
                        expect: String::new(),
                        note: String::new(),
                        scenario: sc,
                    },
                    true,
                ),
                Err(sc_err) => {
                    eprintln!("fuzz: {path} is neither a repro file ({repro_err}) nor a scenario ({sc_err})");
                    return 2;
                }
            }
        }
    };
    println!("replaying {path}");
    println!("  {}", describe(&repro.scenario));
    if !repro.note.is_empty() {
        println!("  note: {}", repro.note);
    }
    let (outcome, deterministic) = check_replay(&repro.scenario);
    let kind = failure_kind(&outcome);
    println!(
        "  outcome: stop={} events={} completed={} violations={:?} panic={:?}",
        outcome.stop, outcome.events, outcome.completed, outcome.violations, outcome.panic
    );
    for d in &outcome.details {
        println!("    {d}");
    }
    if !deterministic {
        eprintln!("fuzz: REPLAY DIVERGED — two runs of the same scenario differed");
        return 1;
    }
    println!("  deterministic: two consecutive runs identical");
    if bare {
        // No expectation recorded; determinism was the whole check.
        return i32::from(kind.is_some());
    }
    if repro.matches(&outcome) {
        println!("  expectation {:?}: satisfied", repro.expect);
        0
    } else {
        eprintln!(
            "fuzz: expectation {:?} NOT met (observed {:?})",
            repro.expect,
            kind.as_deref().unwrap_or("clean")
        );
        1
    }
}

fn write_finding(out_dir: &str, finding: &Finding) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let repro = ReproFile {
        found_with_seed: finding.seed,
        expect: finding.kind.clone(),
        note: format!(
            "found by fuzz campaign; shrunk in {} runs; first detail: {}",
            finding.shrink_runs,
            finding
                .outcome
                .details
                .first()
                .or(finding.outcome.panic.as_ref())
                .map(String::as_str)
                .unwrap_or("-")
        ),
        scenario: finding.shrunk.clone(),
    };
    let path = format!("{out_dir}/repro-seed{}-{}.json", finding.seed, finding.kind);
    std::fs::write(&path, repro.to_json())?;
    Ok(path)
}

fn write_cp_finding(out_dir: &str, finding: &cpfuzz::CpFinding) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let repro = cpfuzz::CpReproFile {
        found_with_seed: finding.seed,
        expect: finding.kind.clone(),
        note: format!(
            "found by control-plane fuzz campaign; shrunk in {} runs; detail: {}",
            finding.shrink_runs,
            finding
                .outcome
                .violation
                .as_ref()
                .map(|(_, d)| d.as_str())
                .or(finding.outcome.panic.as_deref())
                .unwrap_or("-")
        ),
        scenario: finding.shrunk.clone(),
    };
    let path = format!(
        "{out_dir}/cp-repro-seed{}-{}.json",
        finding.seed, finding.kind
    );
    std::fs::write(&path, repro.to_json())?;
    Ok(path)
}

fn control_plane_campaign(cli: &Cli) -> i32 {
    println!(
        "== fuzz --control-plane: {} scenarios from seed {} (shrink budget {}) ==",
        cli.count, cli.start_seed, cli.shrink_budget
    );
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let findings = cpfuzz::run_campaign(cli.start_seed, cli.count, cli.jobs, cli.shrink_budget);
    std::panic::set_hook(default_hook);

    if findings.is_empty() {
        println!("all {} control-plane scenarios clean", cli.count);
        return 0;
    }
    eprintln!("{} failing control-plane scenario(s):", findings.len());
    for finding in &findings {
        eprintln!(
            "  seed {}: {} — {}",
            finding.seed,
            finding.kind,
            describe_cp(&finding.shrunk)
        );
        if let Some(p) = &finding.outcome.panic {
            eprintln!("    panic: {p}");
        }
        if let Some((kind, detail)) = &finding.outcome.violation {
            eprintln!("    {kind}: {detail}");
        }
        match write_cp_finding(&cli.out, finding) {
            Ok(path) => eprintln!("    repro written to {path}"),
            Err(e) => eprintln!("    failed to write repro: {e}"),
        }
    }
    1
}

fn main() {
    let cli = parse_args();
    if let Some(path) = &cli.replay {
        std::process::exit(replay_file(path));
    }
    if cli.control_plane {
        std::process::exit(control_plane_campaign(&cli));
    }

    println!(
        "== fuzz: {} scenarios from seed {} (shrink budget {}) ==",
        cli.count, cli.start_seed, cli.shrink_budget
    );
    // Failing scenarios panic inside catch_unwind; silence the default
    // hook's backtrace spam for the campaign (panics are reported as
    // findings instead).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let findings = run_campaign(cli.start_seed, cli.count, cli.jobs, cli.shrink_budget);
    std::panic::set_hook(default_hook);

    if findings.is_empty() {
        println!("all {} scenarios clean", cli.count);
        return;
    }
    eprintln!("{} failing scenario(s):", findings.len());
    for finding in &findings {
        eprintln!(
            "  seed {}: {} — {}",
            finding.seed,
            finding.kind,
            describe(&finding.shrunk)
        );
        if let Some(p) = &finding.outcome.panic {
            eprintln!("    panic: {p}");
        }
        for d in &finding.outcome.details {
            eprintln!("    {d}");
        }
        match write_finding(&cli.out, finding) {
            Ok(path) => eprintln!("    repro written to {path}"),
            Err(e) => eprintln!("    failed to write repro: {e}"),
        }
    }
    std::process::exit(1);
}
