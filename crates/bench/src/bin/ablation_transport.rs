//! Ablation: windowed DCTCP-like vs rate-based (BBR-flavoured) senders.
//!
//! §5 FW#1: the proxy's loss-detection requirements "are intertwined with
//! ... congestion control (e.g., BBR is more resilient to loss)". Two
//! questions, answered with the `dcsim::protocol::rate::RateSender`:
//!
//! 1. Does the baseline's inter-DC collapse survive a switch to paced,
//!    loss-resilient senders (i.e. is the problem transport-specific)?
//! 2. Does the *detecting* proxy (which emits some spurious NACKs) fare
//!    relatively better under a transport that never cuts its rate on a
//!    NACK?
//!
//! Run with: `cargo run --release -p bench --bin ablation_transport [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use incast_core::scheme::Transport;
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    transport: String,
    scheme: String,
    mean_secs: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: transport",
        "windowed DCTCP-like vs rate-based loss-resilient senders (degree 8, 100 MB)",
    );
    let schemes: &[Scheme] = if opts.quick {
        &[Scheme::Baseline, Scheme::ProxyStreamlined]
    } else {
        &Scheme::EXTENDED
    };

    let transports = [
        ("windowed (DCTCP-like)", Transport::WindowedDctcp),
        ("rate-based (BBR-lite)", Transport::RateBased),
    ];
    let cells: Vec<(&str, Transport, Scheme)> = transports
        .iter()
        .flat_map(|&(label, transport)| {
            schemes
                .iter()
                .map(move |&scheme| (label, transport, scheme))
        })
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(_, transport, scheme)| ExperimentConfig {
            scheme,
            degree: 8,
            total_bytes: 100_000_000,
            transport,
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec!["transport", "scheme", "ICT mean", "rtos/run"]);
    for (&(label, _, scheme), (summary, outcomes)) in cells.iter().zip(&results) {
        let rtos: u64 = outcomes.iter().map(|o| o.rto_fires).sum::<u64>() / outcomes.len() as u64;
        table.row(vec![
            label.to_string(),
            scheme.label().to_string(),
            fmt_secs(summary.mean),
            rtos.to_string(),
        ]);
        emit_json(
            "ablation_transport",
            &Point {
                transport: label.to_string(),
                scheme: scheme.label().to_string(),
                mean_secs: summary.mean,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("reading: pacing softens the baseline's first-RTT catastrophe but");
    println!("cannot shorten the feedback loop — the proxy still wins; and the");
    println!("detecting proxy's occasional spurious NACKs are harmless to a");
    println!("sender that treats NACKs as retransmit-only signals.");
}
