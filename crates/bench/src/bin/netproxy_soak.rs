//! Chaos soak for the netproxy datapath: loadgen × fault-injected
//! sharded relay for N seconds, with a mid-run shard crash (and
//! optionally a wedge), judged by a strict packet-accounting ledger —
//! **zero unexplained loss**. Every datagram the generator delivered
//! must be explained by a sink arrival, a NACK, a counted relay-side
//! decision (drop / shed / coalesce), a counted fault event (drop /
//! blackhole / pending delay / corruption), a counted send error, or
//! the bounded crash-loss budget.
//!
//! ```console
//! $ cargo run --release -p bench --bin netproxy_soak -- --duration-s 60 --json
//! ```
//!
//! Flags:
//!   --duration-s N    soak length in seconds (default 10)
//!   --seed N          fault-plan base seed (default 1)
//!   --layer L         auto | mmsg | fallback (default auto)
//!   --shards N        relay shards (default 2)
//!   --threads N       loadgen worker threads (default 2)
//!   --flows N         flows per worker thread (default 64)
//!   --rate N          aggregate pkts/sec (default 40000)
//!   --trim F          trimmed-header fraction (default 0.15)
//!   --payload N       payload bytes per data datagram (default 64)
//!   --no-faults       run the clean datapath (no fault shim)
//!   --no-crash        skip the mid-run shard crash
//!   --wedge           additionally wedge a shard at 60% of the run
//!   --overload-pps N  per-shard forward budget; 0 = ladder off (default 0)
//!   --crash-budget N  max unexplained datagrams with chaos on
//!                     (default = --rate, i.e. one second of traffic)
//!   --json            emit the machine-readable verdict object
//!
//! The ledger is streamlined-relay-only: streamlined is the only
//! datagram-conserving variant (detecting can emit several NACKs per
//! arrival), so it is the one whose books can be balanced exactly.

use netproxy::fault::FaultConfig;
use netproxy::loadgen::{BatchLoadGen, BatchSink};
use netproxy::shard::{OverloadConfig, RelayConfig, ShardedRelay};
use netproxy::supervisor::SupervisorConfig;
use netproxy::SocketLayer;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct Cli {
    duration: Duration,
    seed: u64,
    layer: SocketLayer,
    shards: usize,
    threads: usize,
    flows: usize,
    rate: u64,
    trim: f64,
    payload: usize,
    faults: bool,
    crash: bool,
    wedge: bool,
    overload_pps: u64,
    crash_budget: Option<u64>,
    json: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            duration: Duration::from_secs(10),
            seed: 1,
            layer: SocketLayer::Auto,
            shards: 2,
            threads: 2,
            flows: 64,
            rate: 40_000,
            trim: 0.15,
            payload: 64,
            faults: true,
            crash: true,
            wedge: false,
            overload_pps: 0,
            crash_budget: None,
            json: false,
        }
    }
}

fn parse_args() -> Cli {
    let mut cli = Cli::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let usage = "see the module docs: --duration-s --seed --layer --shards --threads --flows \
                 --rate --trim --payload --no-faults --no-crash --wedge --overload-pps \
                 --crash-budget --json";
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("{arg} needs a value; {usage}"))
                .clone()
        };
        match arg.as_str() {
            "--duration-s" => {
                cli.duration = Duration::from_secs(value().parse().expect("--duration-s N"))
            }
            "--seed" => cli.seed = value().parse().expect("--seed N"),
            "--layer" => {
                cli.layer = match value().as_str() {
                    "auto" => SocketLayer::Auto,
                    "mmsg" => SocketLayer::Mmsg,
                    "fallback" => SocketLayer::Fallback,
                    other => panic!("unknown layer {other}; {usage}"),
                }
            }
            "--shards" => cli.shards = value().parse().expect("--shards N"),
            "--threads" => cli.threads = value().parse().expect("--threads N"),
            "--flows" => cli.flows = value().parse().expect("--flows N"),
            "--rate" => cli.rate = value().parse().expect("--rate N"),
            "--trim" => cli.trim = value().parse().expect("--trim F"),
            "--payload" => cli.payload = value().parse().expect("--payload N"),
            "--no-faults" => cli.faults = false,
            "--no-crash" => cli.crash = false,
            "--wedge" => cli.wedge = true,
            "--overload-pps" => cli.overload_pps = value().parse().expect("--overload-pps N"),
            "--crash-budget" => cli.crash_budget = Some(value().parse().expect("--crash-budget N")),
            "--json" => cli.json = true,
            other => panic!("unknown argument {other}; {usage}"),
        }
    }
    cli
}

/// One ledger line: a named invariant, whether it held, and the numbers
/// behind it (kept quote-free so the JSON encoding stays trivial).
struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn check(name: &'static str, pass: bool, detail: String) -> Check {
    Check { name, pass, detail }
}

/// Retries `op` with bounded backoff while it fails with `AddrInUse`
/// (same startup race as in `netproxy_load`).
fn retry_addr_in_use<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut backoff = Duration::from_millis(10);
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && attempt < 4 => {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            other => return other,
        }
    }
}

fn main() {
    let cli = parse_args();
    // simlint: allow(wall-clock) — a soak harness measures real elapsed time
    let epoch = Instant::now();
    let sink = retry_addr_in_use(|| BatchSink::start(1, cli.layer, epoch)).expect("sink");
    let faults = cli
        .faults
        .then(|| FaultConfig::soak(cli.seed, cli.duration));
    let relay = retry_addr_in_use(|| {
        ShardedRelay::start(
            SocketAddr::from(([127, 0, 0, 1], 0)),
            RelayConfig {
                shards: cli.shards,
                layer: cli.layer,
                faults: faults.clone(),
                overload: (cli.overload_pps > 0)
                    .then(|| OverloadConfig::shed_at(cli.overload_pps as f64)),
                supervisor: SupervisorConfig {
                    poll: Duration::from_millis(25),
                    wedge_timeout: Duration::from_millis(400),
                    ..SupervisorConfig::default()
                },
                ..RelayConfig::streamlined(sink.local_addr())
            },
        )
    })
    .expect("relay");
    let shards = relay.shards();

    // Chaos schedule: crash one shard mid-run; optionally wedge another
    // at 60%. Runs on a timer thread while the generator pushes load.
    let crash_at = cli.duration / 2;
    let wedge_at = cli.duration * 3 / 5;
    let chaos = {
        let relay = &relay;
        std::thread::scope(|scope| {
            let chaos_handle = scope.spawn(move || {
                if cli.crash {
                    std::thread::sleep(crash_at);
                    relay.inject_crash(0);
                }
                if cli.wedge {
                    std::thread::sleep(wedge_at.saturating_sub(if cli.crash {
                        crash_at
                    } else {
                        Duration::ZERO
                    }));
                    relay.inject_wedge(shards - 1);
                }
            });
            let gen = BatchLoadGen {
                threads: cli.threads,
                flows_per_thread: cli.flows,
                rate_pps: cli.rate,
                duration: cli.duration,
                trim_fraction: cli.trim,
                payload_len: cli.payload,
                layer: cli.layer,
                // Faulted relays hold feedback (delay faults, restart
                // windows); give backflow a real chance to land.
                drain_grace: Duration::from_millis(500),
            };
            let report = gen.run(relay.local_addr(), epoch).expect("loadgen run");
            chaos_handle.join().expect("chaos thread");
            report
        })
    };
    let report = chaos;

    // Settle: wait for in-flight datagrams (kernel queues, delayed
    // releases) to quiesce before snapshotting — two identical samples
    // 100 ms apart, capped at 3 s.
    // simlint: allow(wall-clock) — real-time drain deadline for live sockets
    let settle = Instant::now();
    let mut last = (0u64, 0u64, 0u64);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let s = sink.stats();
        let r = relay.stats();
        let now = (s.received + s.trimmed + s.malformed, r.received, r.nacks);
        if now == last || settle.elapsed() > Duration::from_secs(3) {
            break;
        }
        last = now;
    }

    let relay_stats = relay.stats();
    let sink_stats = sink.stats();
    let fs = relay.fault_stats();
    let sup = relay.supervisor_stats();
    let heartbeats: Vec<u64> = (0..shards).map(|s| relay.shard_heartbeat(s)).collect();
    let generations: Vec<u64> = (0..shards).map(|s| relay.shard_generation(s)).collect();

    let mut checks: Vec<Check> = Vec::new();

    // eqB — relay-internal conservation (exact, always): every received
    // datagram lands in exactly one outcome bucket.
    let explained_b = relay_stats.forwarded
        + relay_stats.reversed
        + relay_stats.dropped
        + relay_stats.nacks
        + relay_stats.nacks_coalesced
        + relay_stats.shed_dropped;
    checks.push(check(
        "relay_conservation",
        relay_stats.received == explained_b,
        format!(
            "received {} == forwarded {} + reversed {} + dropped {} + nacks {} + coalesced {} + shed_dropped {}",
            relay_stats.received,
            relay_stats.forwarded,
            relay_stats.reversed,
            relay_stats.dropped,
            relay_stats.nacks,
            relay_stats.nacks_coalesced,
            relay_stats.shed_dropped,
        ),
    ));

    // Strict send-error classification: every kernel refusal is either
    // a classified whole-batch loss or did not happen. Partial
    // (per-datagram) refusals would be unclassifiable — on loopback at
    // these rates they must not occur.
    checks.push(check(
        "send_errors_classified",
        relay_stats.send_errors == relay_stats.send_err_data + relay_stats.send_err_ctrl,
        format!(
            "send_errors {} == data {} + ctrl {}",
            relay_stats.send_errors, relay_stats.send_err_data, relay_stats.send_err_ctrl,
        ),
    ));
    checks.push(check(
        "no_release_errors",
        fs.tx_release_errors == 0,
        format!("tx_release_errors {}", fs.tx_release_errors),
    ));

    // eqA — generator → relay, adjusted for counted rx fault events.
    // What's left over is crash/wedge loss: packets the kernel steered
    // into a socket that died (queue lost on close) or wedged (queue
    // overflowed while unserviced).
    let arrived_adj = report.delivered() + fs.rx_duplicated;
    let rx_explained =
        fs.rx_dropped + fs.rx_blackholed + fs.rx_delay_pending() + relay_stats.received;
    let crash_lost = arrived_adj as i64 - rx_explained as i64;
    let chaos_on = cli.crash || cli.wedge;
    let budget = cli.crash_budget.unwrap_or(cli.rate) as i64;
    let (pass_a, name_a) = if chaos_on {
        (
            crash_lost >= 0 && crash_lost <= budget,
            "ingress_loss_within_crash_budget",
        )
    } else {
        (crash_lost == 0, "ingress_zero_unexplained")
    };
    checks.push(check(
        name_a,
        pass_a,
        format!(
            "crash_lost {} (delivered {} + rx_dup {} - rx_dropped {} - rx_blackholed {} - rx_delay_pending {} - relay_received {}; budget {})",
            crash_lost,
            report.delivered(),
            fs.rx_duplicated,
            fs.rx_dropped,
            fs.rx_blackholed,
            fs.rx_delay_pending(),
            relay_stats.received,
            if chaos_on { budget } else { 0 },
        ),
    ));

    // eqC — relay → sink, adjusted for counted tx fault events on the
    // data class. Corrupted data still arrives (as sink malformation),
    // so corruption does not enter the balance; sink_total includes
    // every arrival class.
    let sink_total =
        sink_stats.received + sink_stats.trimmed + sink_stats.feedback + sink_stats.malformed;
    let egress_expected =
        (relay_stats.forwarded + fs.tx_duplicated_data + fs.tx_delay_released_data) as i64
            - (fs.tx_dropped_data
                + fs.tx_blackholed_data
                + fs.tx_delayed_data
                + relay_stats.send_err_data) as i64;
    checks.push(check(
        "egress_accounted",
        sink_total as i64 == egress_expected,
        format!(
            "sink_total {} == forwarded {} + tx_dup_data {} + released {} - tx_dropped_data {} - tx_blackholed_data {} - tx_delayed_data {} - send_err_data {}",
            sink_total,
            relay_stats.forwarded,
            fs.tx_duplicated_data,
            fs.tx_delay_released_data,
            fs.tx_dropped_data,
            fs.tx_blackholed_data,
            fs.tx_delayed_data,
            relay_stats.send_err_data,
        ),
    ));

    // NACK backflow — relay NACKs minus counted ctrl-class tx losses
    // bound what the generator can see; slack covers backflow still in
    // a worker's kernel queue when its drain grace expired.
    let nack_expected = (relay_stats.nacks + fs.tx_duplicated_ctrl + fs.tx_delay_released_ctrl)
        as i64
        - (fs.tx_dropped_ctrl
            + fs.tx_blackholed_ctrl
            + fs.tx_delayed_ctrl
            + fs.tx_corrupted_ctrl
            + relay_stats.send_err_ctrl) as i64;
    let nack_slack = (nack_expected / 20).max(128);
    let nack_gap = nack_expected - report.nacks_received as i64;
    checks.push(check(
        "nack_backflow_accounted",
        (0..=nack_slack).contains(&nack_gap),
        format!(
            "expected {} - received {} = gap {} (slack {})",
            nack_expected, report.nacks_received, nack_gap, nack_slack,
        ),
    ));

    // Fault shim engagement: a soak with faults on that injected
    // nothing proves nothing.
    if cli.faults {
        checks.push(check(
            "faults_engaged",
            fs.rx_dropped > 0 && fs.rx_delayed > 0 && fs.rx_blackholed > 0 && fs.total_events() > 0,
            format!(
                "rx_dropped {} rx_delayed {} rx_blackholed {} total_events {}",
                fs.rx_dropped,
                fs.rx_delayed,
                fs.rx_blackholed,
                fs.total_events(),
            ),
        ));
    }

    // Recovery: every injected chaos event was detected and the shard
    // came back (generation advanced, nothing abandoned).
    if cli.crash {
        checks.push(check(
            "crash_recovered",
            sup.crashes_detected >= 1 && generations[0] >= 1,
            format!(
                "crashes_detected {} gen[0] {}",
                sup.crashes_detected, generations[0],
            ),
        ));
    }
    if cli.wedge {
        checks.push(check(
            "wedge_recovered",
            sup.wedges_detected >= 1 && generations[shards - 1] >= 1,
            format!(
                "wedges_detected {} gen[last] {}",
                sup.wedges_detected,
                generations[shards - 1],
            ),
        ));
    }
    if chaos_on {
        checks.push(check(
            "all_shards_alive",
            sup.gave_up == 0 && sup.restarts >= 1,
            format!("restarts {} gave_up {}", sup.restarts, sup.gave_up),
        ));
        // Liveness at the end of the run: heartbeats still advance.
        std::thread::sleep(Duration::from_millis(50));
        let beating = (0..shards).any(|s| relay.shard_heartbeat(s) > heartbeats[s]);
        checks.push(check(
            "replacement_shards_beating",
            beating,
            format!("heartbeats {heartbeats:?} -> advancing {beating}"),
        ));
    }

    // Overload ladder engagement under deliberate overload.
    if cli.overload_pps > 0 {
        checks.push(check(
            "shed_ladder_engaged",
            relay_stats.shed_nacked + relay_stats.shed_dropped > 0
                && relay_stats.nacks_coalesced > 0,
            format!(
                "shed_nacked {} shed_dropped {} nacks_coalesced {}",
                relay_stats.shed_nacked, relay_stats.shed_dropped, relay_stats.nacks_coalesced,
            ),
        ));
    }

    let pass = checks.iter().all(|c| c.pass);
    if cli.json {
        let mut body = String::new();
        for (i, c) in checks.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"name\":\"{}\",\"pass\":{},\"detail\":\"{}\"}}",
                c.name, c.pass, c.detail,
            ));
        }
        println!(
            "{{\"suite\":\"netproxy_soak\",\"layer\":\"{}\",\"duration_s\":{},\"seed\":{},\"shards\":{},\"rate_pps\":{},\"trim\":{},\"faults\":{},\"crash\":{},\"wedge\":{},\"overload_pps\":{},\"sent\":{},\"delivered\":{},\"nacks_received\":{},\"relay_received\":{},\"relay_forwarded\":{},\"relay_nacks\":{},\"relay_dropped\":{},\"relay_shed_nacked\":{},\"relay_shed_dropped\":{},\"relay_nacks_coalesced\":{},\"relay_io_retries\":{},\"sink_received\":{},\"sink_malformed\":{},\"fault_events\":{},\"supervisor_restarts\":{},\"supervisor_crashes\":{},\"supervisor_wedges\":{},\"supervisor_gave_up\":{},\"crash_lost\":{},\"checks\":[{}],\"verdict\":\"{}\"}}",
            relay.layer().name(),
            cli.duration.as_secs(),
            cli.seed,
            shards,
            cli.rate,
            cli.trim,
            cli.faults,
            cli.crash,
            cli.wedge,
            cli.overload_pps,
            report.sent_packets,
            report.delivered(),
            report.nacks_received,
            relay_stats.received,
            relay_stats.forwarded,
            relay_stats.nacks,
            relay_stats.dropped,
            relay_stats.shed_nacked,
            relay_stats.shed_dropped,
            relay_stats.nacks_coalesced,
            relay_stats.io_retries,
            sink_stats.received,
            sink_stats.malformed,
            fs.total_events(),
            sup.restarts,
            sup.crashes_detected,
            sup.wedges_detected,
            sup.gave_up,
            crash_lost,
            body,
            if pass { "pass" } else { "fail" },
        );
    } else {
        println!(
            "netproxy_soak: {}s on {} layer, {} shards, {} pkts/sec, faults={} crash={} wedge={} overload={}",
            cli.duration.as_secs(),
            relay.layer().name(),
            shards,
            cli.rate,
            cli.faults,
            cli.crash,
            cli.wedge,
            cli.overload_pps,
        );
        println!(
            "  gen: {} sent / {} delivered, {} NACKs back; relay: {} received, {} forwarded, {} nacks ({} shed, {} coalesced, {} shed-dropped), {} io retries",
            report.sent_packets,
            report.delivered(),
            report.nacks_received,
            relay_stats.received,
            relay_stats.forwarded,
            relay_stats.nacks,
            relay_stats.shed_nacked,
            relay_stats.nacks_coalesced,
            relay_stats.shed_dropped,
            relay_stats.io_retries,
        );
        println!(
            "  faults: {} events; supervisor: {} restarts ({} crashes, {} wedges, {} abandoned); crash_lost {}",
            fs.total_events(),
            sup.restarts,
            sup.crashes_detected,
            sup.wedges_detected,
            sup.gave_up,
            crash_lost,
        );
        for c in &checks {
            println!(
                "  [{}] {}: {}",
                if c.pass { "ok" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        println!("  verdict: {}", if pass { "PASS" } else { "FAIL" });
    }
    if !pass {
        std::process::exit(1);
    }
}
