//! Ablation: ECN response — DCTCP α estimation vs plain halving.
//!
//! §4.1 describes the senders as "DCTCP-like". The two readings differ:
//! true DCTCP cuts the window in proportion to the *fraction* of marked
//! bytes per round (gentle under transient marking), while a literal
//! "decrease upon marked ACK" halves once per round regardless. The
//! choice matters most for the baseline, whose long feedback loop makes
//! every over-cut expensive to regrow.
//!
//! Run with: `cargo run --release -p bench --bin ablation_cc_response [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use dcsim::protocol::dctcp::EcnResponse;
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    response: String,
    scheme: String,
    mean_secs: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: ECN response",
        "DCTCP alpha-proportional cuts vs halve-per-round (degree 8, 100 MB)",
    );

    let responses = [
        (
            "DCTCP alpha (g=1/16)",
            EcnResponse::DctcpAlpha { g: 1.0 / 16.0 },
        ),
        ("halve per round", EcnResponse::HalvePerRound),
    ];
    let cells: Vec<(&str, EcnResponse, Scheme)> = responses
        .iter()
        .flat_map(|&(label, response)| {
            Scheme::ALL
                .into_iter()
                .map(move |scheme| (label, response, scheme))
        })
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(_, response, scheme)| ExperimentConfig {
            scheme,
            degree: 8,
            total_bytes: 100_000_000,
            ecn_response: response,
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec!["ECN response", "scheme", "ICT mean"]);
    for (&(label, _, scheme), (summary, _)) in cells.iter().zip(&results) {
        table.row(vec![
            label.to_string(),
            scheme.label().to_string(),
            fmt_secs(summary.mean),
        ]);
        emit_json(
            "ablation_cc_response",
            &Point {
                response: label.to_string(),
                scheme: scheme.label().to_string(),
                mean_secs: summary.mean,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("expected: the proxies are robust to the response rule; the");
    println!("baseline degrades under blunt halving because every recovery");
    println!("round costs a full long-haul RTT.");
}
