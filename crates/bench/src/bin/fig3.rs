//! Figure 3: incast completion time vs long-haul link latency (log–log).
//!
//! §4.2: "we fix the incast degree to 4 and the total incast size to
//! 100MB. The intra-datacenter link latency is 1us. We vary the latency
//! of the long-haul links ... Both proxy schemes outperform the baseline
//! for any link latency larger than or equal to 100us ... The incast
//! latency savings are more pronounced with larger link latencies."
//!
//! Run with: `cargo run --release -p bench --bin fig3 [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use dcsim::prelude::*;
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    wan_latency_us: u64,
    scheme: String,
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
    reduction_vs_baseline: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Figure 3",
        "incast completion time vs long-haul link latency (degree 4, 100 MB; log-log)",
    );
    let latencies_us: &[u64] = if opts.quick {
        &[1, 1_000]
    } else {
        &[1, 10, 100, 1_000, 10_000, 100_000]
    };

    // Simulate the whole (latency × scheme) grid in parallel, then walk
    // the results in grid order to build the report.
    let cells: Vec<(u64, Scheme)> = latencies_us
        .iter()
        .flat_map(|&us| Scheme::ALL.into_iter().map(move |scheme| (us, scheme)))
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(us, scheme)| ExperimentConfig {
            scheme,
            degree: 4,
            total_bytes: 100_000_000,
            topo: TwoDcParams::default().with_wan_latency(SimDuration::from_micros(us)),
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec![
        "link latency",
        "scheme",
        "ICT mean",
        "min",
        "max",
        "vs baseline",
    ]);

    let mut results = results.iter();
    for &us in latencies_us {
        let mut baseline_mean = None;
        for scheme in Scheme::ALL {
            let (summary, _) = results.next().expect("one result per cell");
            let reduction = match baseline_mean {
                None => {
                    baseline_mean = Some(summary.mean);
                    0.0
                }
                Some(base) => (base - summary.mean) / base,
            };
            table.row(vec![
                format!("{}", SimDuration::from_micros(us)),
                scheme.label().to_string(),
                fmt_secs(summary.mean),
                fmt_secs(summary.min),
                fmt_secs(summary.max),
                if scheme == Scheme::Baseline {
                    "—".to_string()
                } else {
                    format!("{:+.1}%", -reduction * 100.0)
                },
            ]);
            emit_json(
                "fig3",
                &Point {
                    wan_latency_us: us,
                    scheme: scheme.label().to_string(),
                    mean_secs: summary.mean,
                    min_secs: summary.min,
                    max_secs: summary.max,
                    reduction_vs_baseline: reduction,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected shape: baseline ahead at ~1 us (the extra hop is pure");
    println!("overhead), crossover around 100 us, proxy wins growing with the");
    println!("latency gap at region (ms) and WAN (100 ms) scale.");
}
