//! Ablation: orchestrating proxy selection across incasts (§5, FW#3).
//!
//! Two questions the paper raises, answered quantitatively:
//!
//! 1. **Does contention matter?** Simulate N concurrent incasts sharing
//!    one proxy vs spread over distinct proxies.
//! 2. **How do the selection designs compare?** Drive many allocation
//!    requests through the global orchestrator, the decentralized
//!    power-of-k selector (at several staleness levels), and random
//!    placement; report load imbalance and trial overhead.
//! 3. **What does crash tolerance cost?** Drive the sharded control
//!    plane through each rung of its degradation ladder — healthy, one
//!    shard down before and after gossip convergence, majority down —
//!    and report where grants came from and how balanced they stayed.
//!
//! Run with: `cargo run --release -p bench --bin ablation_orchestration [--quick]`

use bench::{banner, emit_json, RunOptions};
use dcsim::prelude::*;
use incast_core::orchestrator::{
    DecentralizedSelector, GlobalOrchestrator, IncastRequest, ProxySelector, ShardedConfig,
    ShardedOrchestrator,
};
use incast_core::scheme::{install_incast, IncastSpec, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::{SplitMix64, Table};

#[derive(Serialize)]
struct ContentionPoint {
    concurrent_incasts: usize,
    placement: String,
    worst_ict_secs: f64,
}

#[derive(Serialize)]
struct SelectorPoint {
    selector: String,
    max_load: u64,
    avg_trials: f64,
    conflicts: u64,
}

#[derive(Serialize)]
struct ShardedPoint {
    mode: String,
    granted: u64,
    max_load: u64,
    home_grants: u64,
    takeovers: u64,
    fallback_selections: u64,
    reclaims: u64,
}

const DEGREE: usize = 4;
const BYTES: u64 = 50_000_000;

/// Runs `n` concurrent streamlined incasts with the given proxy choice
/// per incast; returns the worst completion (the job-level metric).
fn run_concurrent(proxies: &[HostId], seed: u64) -> f64 {
    let params = TwoDcParams::default().with_trim(true);
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let mut handles = Vec::new();
    for (i, &proxy) in proxies.iter().enumerate() {
        let lo = i * DEGREE;
        let spec = IncastSpec::new(dc0[lo..lo + DEGREE].to_vec(), dc1[i], BYTES).with_proxy(proxy);
        handles.push(install_incast(&mut sim, &spec, Scheme::ProxyStreamlined));
    }
    bench::expect_no_event_cap(
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600))),
        "orchestration ablation",
    );
    handles
        .iter()
        .map(|h| {
            h.completion(sim.metrics())
                .expect("completes")
                .as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: orchestration (FW#3)",
        "proxy contention across concurrent incasts, and selector comparison",
    );

    // Part 1: contention in simulation.
    let topo = two_dc_leaf_spine(&TwoDcParams::default());
    let dc0 = topo.hosts_in_dc(0);
    let counts: &[usize] = if opts.quick { &[2] } else { &[2, 3, 4] };
    // Both placements of every contention level simulate in parallel.
    let cells: Vec<Vec<HostId>> = counts
        .iter()
        .flat_map(|&n| {
            let pool_start = n * DEGREE; // hosts beyond the senders
            [
                vec![dc0[pool_start]; n],
                (0..n).map(|i| dc0[pool_start + i]).collect(),
            ]
        })
        .collect();
    let worsts = opts
        .sweep_runner()
        .run(&cells, |proxies| run_concurrent(proxies, opts.seed));

    let mut table = Table::new(vec!["concurrent", "placement", "worst ICT", "penalty"]);
    let mut worsts = worsts.into_iter();
    for &n in counts {
        let worst_shared = worsts.next().expect("one result per cell");
        let worst_distinct = worsts.next().expect("one result per cell");
        table.row(vec![
            n.to_string(),
            "one shared proxy".to_string(),
            fmt_secs(worst_shared),
            format!("{:.2}x", worst_shared / worst_distinct),
        ]);
        table.row(vec![
            n.to_string(),
            "distinct proxies".to_string(),
            fmt_secs(worst_distinct),
            "1.00x".to_string(),
        ]);
        emit_json(
            "ablation_orchestration",
            &ContentionPoint {
                concurrent_incasts: n,
                placement: "shared".into(),
                worst_ict_secs: worst_shared,
            },
        );
        emit_json(
            "ablation_orchestration",
            &ContentionPoint {
                concurrent_incasts: n,
                placement: "distinct".into(),
                worst_ict_secs: worst_distinct,
            },
        );
    }
    print!("{}", table.render());
    println!();

    // Part 2: selector quality at allocation scale.
    let candidates: Vec<HostId> = (0..32).map(HostId).collect();
    let requests: Vec<IncastRequest> = (0..256)
        .map(|id| IncastRequest {
            id,
            senders: vec![HostId(1000), HostId(1001)],
            receiver: HostId(2000),
            expected_bytes: 1,
        })
        .collect();

    let mut table = Table::new(vec!["selector", "max load", "avg trials", "conflicts"]);
    let mut report = |name: &str, max_load: u64, avg_trials: f64, conflicts: u64| {
        table.row(vec![
            name.to_string(),
            max_load.to_string(),
            format!("{avg_trials:.2}"),
            conflicts.to_string(),
        ]);
        emit_json(
            "ablation_orchestration_selectors",
            &SelectorPoint {
                selector: name.to_string(),
                max_load,
                avg_trials,
                conflicts,
            },
        );
    };

    let mut global = GlobalOrchestrator::new(candidates.clone());
    let mut trials = 0u64;
    for r in &requests {
        trials += global.select(r).expect("assignment").trials as u64;
    }
    let max = candidates.iter().map(|&c| global.load_of(c)).max().unwrap();
    report("global orchestrator", max, trials as f64 / 256.0, 0);

    for (label, p) in [
        ("decentralized k=2, fresh", 0.0),
        ("decentralized k=2, stale p=0.3", 0.3),
    ] {
        let mut dec = DecentralizedSelector::new(candidates.clone(), 2, opts.seed)
            .with_conflict_probability(p);
        let mut trials = 0u64;
        for r in &requests {
            trials += dec.select(r).expect("assignment").trials as u64;
        }
        let max = candidates.iter().map(|&c| dec.load_of(c)).max().unwrap();
        report(label, max, trials as f64 / 256.0, dec.conflicts);
    }

    // Random placement strawman.
    let mut rng = SplitMix64::new(opts.seed);
    let mut load = vec![0u64; candidates.len()];
    for _ in &requests {
        load[rng.next_bounded(candidates.len() as u64) as usize] += 1;
    }
    report("random placement", *load.iter().max().unwrap(), 1.0, 0);

    print!("{}", table.render());
    println!();

    // Part 3: the sharded control plane down its degradation ladder.
    // Four rungs, same 256-request workload spread across all shards:
    //   healthy           — every grant comes from the receiver's home shard
    //   crash, pre-gossip — shard 0 dies, requests arrive before anyone
    //                       suspects it: the ladder falls through to the
    //                       decentralized fallback
    //   crash, converged  — same crash, but gossip has converged: the ring
    //                       successor adopts shard 0's victims (takeover)
    //   majority dead     — 3 of 4 shards down: the whole plane degrades
    //                       to power-of-k fallback
    let mut table = Table::new(vec![
        "mode", "granted", "max load", "home", "takeover", "fallback", "reclaims",
    ]);
    let cfg = ShardedConfig::default();
    for (mode, crashes, settle_us) in [
        ("healthy", 0u32, 0u64),
        ("1 shard down, pre-gossip", 1, 0),
        ("1 shard down, converged", 1, 4_000),
        ("majority down", 3, 4_000),
    ] {
        let mut orch = ShardedOrchestrator::new(candidates.clone(), cfg, opts.seed);
        for shard in 0..crashes {
            orch.crash_shard(shard);
        }
        let now = SimTime::ZERO + SimDuration::from_micros(settle_us);
        orch.advance_to(now);
        let mut granted = 0u64;
        for r in &requests {
            // Receivers cycle over every shard so the crash actually bites.
            let spread = IncastRequest {
                receiver: HostId(2000 + (r.id as u32 % 8)),
                ..r.clone()
            };
            if orch.select(&spread).is_some() {
                granted += 1;
            }
        }
        let max_load = candidates.iter().map(|&c| orch.load_of(c)).max().unwrap();
        let stats = orch.stats();
        for r in &requests {
            orch.release(r.id);
        }
        assert!(orch.ledger().balanced(), "{:?}", orch.ledger());
        assert_eq!(orch.ledger().active, 0, "{:?}", orch.ledger());
        let home = granted - stats.takeovers - stats.fallback_selections;
        table.row(vec![
            mode.to_string(),
            granted.to_string(),
            max_load.to_string(),
            home.to_string(),
            stats.takeovers.to_string(),
            stats.fallback_selections.to_string(),
            stats.reclaims.to_string(),
        ]);
        emit_json(
            "ablation_orchestration_sharded",
            &ShardedPoint {
                mode: mode.to_string(),
                granted,
                max_load,
                home_grants: home,
                takeovers: stats.takeovers,
                fallback_selections: stats.fallback_selections,
                reclaims: stats.reclaims,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("expected: shared proxies multiply the job-level ICT; the global");
    println!("orchestrator balances perfectly at zero trial overhead, the");
    println!("decentralized selector trades balance and retries for avoiding");
    println!("the central status stream the paper worries about. The sharded");
    println!("plane serves every request on every rung of the ladder: home");
    println!("grants while healthy, sibling takeover once gossip converges,");
    println!("power-of-k fallback before convergence or under majority loss.");
}
