//! Ablation: trimming is what enables the early loss signal (§3, FW#1).
//!
//! The Streamlined proxy turns trimmed headers into immediate NACKs; with
//! drop-tail switches there are no headers to convert and loss detection
//! falls back to the RTO. This sweep quantifies how much of the scheme's
//! benefit depends on trimming support — the motivation for Future Work
//! #1 (loss tracking without router support, see
//! `incast_core::lossdetect`).
//!
//! Run with: `cargo run --release -p bench --bin ablation_no_trim [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use incast_core::experiment::TrimPolicy;
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    degree: usize,
    variant: String,
    mean_secs: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: trimming",
        "Streamlined with trimming switches vs drop-tail switches (100 MB)",
    );
    let degrees: &[usize] = if opts.quick { &[8] } else { &[4, 8, 16, 32] };

    let variants = [
        ("streamlined + trimming", TrimPolicy::SchemeDefault),
        ("streamlined + drop-tail", TrimPolicy::ForceOff),
    ];
    let cells: Vec<(usize, &str, TrimPolicy)> = degrees
        .iter()
        .flat_map(|&degree| {
            variants
                .iter()
                .map(move |&(variant, trim)| (degree, variant, trim))
        })
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(degree, _, trim)| ExperimentConfig {
            scheme: Scheme::ProxyStreamlined,
            degree,
            total_bytes: 100_000_000,
            trim,
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec!["degree", "variant", "ICT mean", "slowdown"]);
    let mut results_it = cells.iter().zip(&results);
    for _ in degrees {
        let mut trim_mean = None;
        for _ in &variants {
            let (&(degree, variant, _), (summary, _)) =
                results_it.next().expect("one result per cell");
            let slowdown = match trim_mean {
                None => {
                    trim_mean = Some(summary.mean);
                    "1.00x".to_string()
                }
                Some(base) => format!("{:.2}x", summary.mean / base),
            };
            table.row(vec![
                degree.to_string(),
                variant.to_string(),
                fmt_secs(summary.mean),
                slowdown,
            ]);
            emit_json(
                "ablation_no_trim",
                &Point {
                    degree,
                    variant: variant.to_string(),
                    mean_secs: summary.mean,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected: without trimming the proxy never sees loss evidence,");
    println!("recovery is RTO-bound, and much of the benefit evaporates —");
    println!("hence FW#1's proxy-side loss detector (ablation_loss_detector).");
}
