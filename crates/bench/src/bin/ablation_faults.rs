//! Ablation: proxy-crash timing vs incast completion time.
//!
//! The proxy is a single point of failure on the detour path: if the host
//! dies mid-incast, every flow's data and feedback blackhole there. This
//! sweep crashes the proxy at different fractions of the fault-free
//! completion time and measures the cost of surviving it via sender-side
//! failover (silence detection, direct-path fallback, proxy re-probing).
//! Baseline (direct path, no proxy) is immune by construction and serves
//! as the reference.
//!
//! Run with: `cargo run --release -p bench --bin ablation_faults [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use dcsim::prelude::*;
use incast_core::experiment::FaultScenario;
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    scheme: String,
    crash_fraction: f64,
    mean_secs: f64,
    slowdown: f64,
    failover_activations: u64,
    packets_lost_to_fault: u64,
    failover_latency_max_secs: f64,
    /// Distinct [`dcsim::sim::TerminatedReason`]s across the repetitions
    /// (normally just `completed`; anything else flags a degraded point).
    terminated: String,
}

/// Distinct termination reasons across a cell's repetitions, joined with
/// `+` in first-seen order.
fn reasons(outcomes: &[incast_core::experiment::IncastOutcome]) -> String {
    let mut seen: Vec<String> = Vec::new();
    for o in outcomes {
        let r = o.terminated_reason.to_string();
        if !seen.contains(&r) {
            seen.push(r);
        }
    }
    seen.join("+")
}

fn config_for(scheme: Scheme, degree: usize, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        scheme,
        degree,
        total_bytes: 100_000_000,
        seed,
        failover: Some(FailoverConfig::default()),
        ..Default::default()
    }
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: proxy crash",
        "crash the proxy mid-incast; sender failover keeps flows alive (100 MB)",
    );
    let degree = 8;
    let fractions: &[f64] = if opts.quick {
        &[0.25, 0.75]
    } else {
        &[0.1, 0.25, 0.5, 0.75]
    };
    let schemes = [
        Scheme::ProxyStreamlined,
        Scheme::ProxyDetecting,
        Scheme::Baseline,
    ];

    // Two sweep phases: the crash times depend on each scheme's fault-free
    // mean, so the healthy runs must finish before the fault grid exists.
    // Within each phase every cell is independent and runs in parallel.
    let runner = opts.sweep_runner();
    let healthy_configs: Vec<ExperimentConfig> = schemes
        .iter()
        .map(|&scheme| config_for(scheme, degree, opts.seed))
        .collect();
    let healthy_results = sweep_experiments(&runner, &healthy_configs, opts.runs);

    let fault_cells: Vec<(usize, f64)> = (0..schemes.len())
        .flat_map(|s| fractions.iter().map(move |&frac| (s, frac)))
        .collect();
    let fault_configs: Vec<ExperimentConfig> = fault_cells
        .iter()
        .map(|&(s, frac)| {
            let mut config = config_for(schemes[s], degree, opts.seed);
            config.faults = FaultScenario::ProxyCrash {
                after: SimDuration::from_secs_f64(frac * healthy_results[s].0.mean),
                restore_after: None,
            };
            config
        })
        .collect();
    let fault_results = sweep_experiments(&runner, &fault_configs, opts.runs);

    let mut table = Table::new(vec![
        "scheme",
        "crash at",
        "ICT mean",
        "slowdown",
        "failovers",
        "lost pkts",
        "max failover lat",
        "end",
    ]);
    let mut fault_it = fault_cells.iter().zip(&fault_results);
    for (s, scheme) in schemes.into_iter().enumerate() {
        let (healthy, healthy_outcomes) = &healthy_results[s];
        let healthy_end = reasons(healthy_outcomes);
        table.row(vec![
            scheme.to_string(),
            "never".to_string(),
            fmt_secs(healthy.mean),
            "1.00x".to_string(),
            "0".to_string(),
            "0".to_string(),
            "-".to_string(),
            healthy_end.clone(),
        ]);
        emit_json(
            "ablation_faults",
            &Point {
                scheme: scheme.to_string(),
                crash_fraction: f64::NAN,
                mean_secs: healthy.mean,
                slowdown: 1.0,
                failover_activations: 0,
                packets_lost_to_fault: 0,
                failover_latency_max_secs: 0.0,
                terminated: healthy_end,
            },
        );
        for _ in fractions {
            let (&(_, frac), (summary, outcomes)) =
                fault_it.next().expect("one result per fault cell");
            let failovers: u64 = outcomes.iter().map(|o| o.failover_activations).sum();
            let lost: u64 = outcomes.iter().map(|o| o.packets_lost_to_fault).sum();
            let max_lat = outcomes
                .iter()
                .map(|o| o.failover_latency_max_secs)
                .fold(0.0, f64::max);
            let end = reasons(outcomes);
            table.row(vec![
                scheme.to_string(),
                format!("{:.0}% of ICT", frac * 100.0),
                fmt_secs(summary.mean),
                format!("{:.2}x", summary.mean / healthy.mean),
                failovers.to_string(),
                lost.to_string(),
                if max_lat > 0.0 {
                    fmt_secs(max_lat)
                } else {
                    "-".to_string()
                },
                end.clone(),
            ]);
            emit_json(
                "ablation_faults",
                &Point {
                    scheme: scheme.to_string(),
                    crash_fraction: frac,
                    mean_secs: summary.mean,
                    slowdown: summary.mean / healthy.mean,
                    failover_activations: failovers,
                    packets_lost_to_fault: lost,
                    failover_latency_max_secs: max_lat,
                    terminated: end,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected: Baseline is flat (no proxy to lose); proxied schemes pay");
    println!("a silence-detection delay (~3 RTOs) plus direct-path retransmission");
    println!("of everything stranded at the dead proxy — earlier crashes cost more");
    println!("because more of the transfer must be redone without the detour.");
}
