//! Ablation: a proxy that *merely relays* does not help (Insight #2).
//!
//! §3: "Crucially, a proxy that simply relays packets between senders and
//! the receiver does not accelerate convergence, because it still takes
//! at least as long for the senders to receive network signals."
//!
//! We run the Streamlined scheme twice: with early NACKs (the design) and
//! with NACK generation disabled, so trimmed headers travel on to the
//! remote receiver and the loss signal pays the full long-haul RTT.
//!
//! Run with: `cargo run --release -p bench --bin ablation_relay_only [--quick]`

use bench::{banner, emit_json, sweep_experiments, RunOptions};
use incast_core::{ExperimentConfig, Scheme};
use serde::Serialize;
use trace::table::fmt_secs;
use trace::Table;

#[derive(Serialize)]
struct Point {
    degree: usize,
    variant: String,
    mean_secs: f64,
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: relay-only proxy",
        "Streamlined with vs without early NACKs (100 MB), plus the no-proxy baseline",
    );
    let degrees: &[usize] = if opts.quick { &[8] } else { &[4, 8, 16, 32] };

    let variants = [
        ("proxy, early NACKs", Scheme::ProxyStreamlined, true),
        ("proxy, relay-only", Scheme::ProxyStreamlined, false),
        ("no proxy (baseline)", Scheme::Baseline, true),
    ];
    let cells: Vec<(usize, &str, Scheme, bool)> = degrees
        .iter()
        .flat_map(|&degree| {
            variants
                .iter()
                .map(move |&(variant, scheme, early_nack)| (degree, variant, scheme, early_nack))
        })
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(degree, _, scheme, early_nack)| ExperimentConfig {
            scheme,
            degree,
            total_bytes: 100_000_000,
            early_nack,
            seed: opts.seed,
            ..Default::default()
        })
        .collect();
    let results = sweep_experiments(&opts.sweep_runner(), &configs, opts.runs);

    let mut table = Table::new(vec!["degree", "variant", "ICT mean", "vs early-NACK"]);
    let mut results_it = cells.iter().zip(&results);
    for _ in degrees {
        let mut early_mean = None;
        for _ in &variants {
            let (&(degree, variant, _, _), (summary, _)) =
                results_it.next().expect("one result per cell");
            let slowdown = match early_mean {
                None => {
                    early_mean = Some(summary.mean);
                    "1.00x".to_string()
                }
                Some(base) => format!("{:.2}x", summary.mean / base),
            };
            table.row(vec![
                degree.to_string(),
                variant.to_string(),
                fmt_secs(summary.mean),
                slowdown,
            ]);
            emit_json(
                "ablation_relay_only",
                &Point {
                    degree,
                    variant: variant.to_string(),
                    mean_secs: summary.mean,
                },
            );
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected: relay-only loses most of the proxy's benefit — the");
    println!("bottleneck moved, but the feedback loop did not shorten.");
}
