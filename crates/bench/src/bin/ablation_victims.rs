//! Ablation: collateral damage — what the incast does to *other* traffic
//! at the receiver.
//!
//! §1: incast "can quickly overwhelm the network, causing congestion and
//! severely degrading the performance of critical applications". The
//! victims are whoever shares the receiver's down-ToR: here, a latency-
//! sensitive 1 MB intra-datacenter flow to the incast receiver, started
//! mid-incast. Under Baseline it queues behind megabytes of incast
//! backlog (or loses packets outright); under the proxy schemes the
//! receiver-side link is clean and the victim barely notices.
//!
//! Run with: `cargo run --release -p bench --bin ablation_victims [--quick]`

use bench::{banner, emit_json, RunOptions};
use dcsim::prelude::*;
use incast_core::experiment::{ExperimentConfig, TrimPolicy};
use incast_core::scheme::install_incast;
use incast_core::Scheme;
use serde::Serialize;
use trace::table::fmt_secs;
use trace::{derive_seed, Summary, Table};

#[derive(Serialize)]
struct Point {
    scheme: String,
    victim_fct_secs: f64,
    incast_ict_secs: f64,
    solo_fct_secs: f64,
}

const VICTIM_BYTES: u64 = 1_000_000;
/// Start the victim 2 ms in, while the incast backlog is at its worst.
const VICTIM_START: SimDuration = SimDuration(2 * 1_000_000_000);

/// Runs the incast plus the victim; returns (victim FCT, incast ICT).
fn run(scheme: Scheme, with_incast: bool, seed: u64) -> (f64, f64) {
    let config = ExperimentConfig {
        scheme,
        degree: 8,
        total_bytes: 100_000_000,
        ..Default::default()
    };
    let params = config
        .topo
        .with_trim(TrimPolicy::SchemeDefault.enabled_for(scheme));
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let spec = config.placement(sim.topology());

    let incast = with_incast.then(|| install_incast(&mut sim, &spec, scheme));
    // The victim: an intra-DC flow from the receiver's rack-mate to the
    // receiver itself, sharing exactly the congested down-ToR port.
    let dc1 = sim.topology().hosts_in_dc(1);
    let victim = dcsim::flows::install_flow(
        &mut sim,
        dcsim::flows::FlowSpec::new(dc1[1], spec.receiver, VICTIM_BYTES),
        SimTime::ZERO + VICTIM_START,
    );
    bench::expect_no_event_cap(
        sim.run(Some(SimTime::ZERO + config.time_limit)),
        "victim-flows ablation",
    );
    let victim_fct = sim
        .metrics()
        .completion(victim.flow)
        .expect("victim completes")
        .since(SimTime::ZERO + VICTIM_START)
        .as_secs_f64();
    let ict = incast
        .map(|h| {
            h.completion(sim.metrics())
                .expect("incast completes")
                .as_secs_f64()
        })
        .unwrap_or(0.0);
    (victim_fct, ict)
}

fn main() {
    let opts = RunOptions::from_args();
    banner(
        "Ablation: victim flows",
        "FCT of a 1 MB intra-DC flow to the incast receiver, started mid-incast",
    );
    // Solo reference: the victim with no incast at all.
    let (solo, _) = run(Scheme::Baseline, false, opts.seed);
    println!("victim FCT with no incast: {}\n", fmt_secs(solo));

    let mut table = Table::new(vec![
        "scheme",
        "victim FCT",
        "slowdown vs solo",
        "incast ICT",
    ]);
    let sampled = opts
        .sweep_runner()
        .run_repeated(&Scheme::ALL, opts.runs, |&scheme, r| {
            run(scheme, true, derive_seed(opts.seed, r as u64))
        });
    for (scheme, outcomes) in Scheme::ALL.into_iter().zip(sampled) {
        let fcts: Vec<f64> = outcomes.iter().map(|&(fct, _)| fct).collect();
        let icts: Vec<f64> = outcomes.iter().map(|&(_, ict)| ict).collect();
        let fct = Summary::of(&fcts);
        let ict = Summary::of(&icts);
        table.row(vec![
            scheme.label().to_string(),
            fmt_secs(fct.mean),
            format!("{:.1}x", fct.mean / solo),
            fmt_secs(ict.mean),
        ]);
        emit_json(
            "ablation_victims",
            &Point {
                scheme: scheme.label().to_string(),
                victim_fct_secs: fct.mean,
                incast_ict_secs: ict.mean,
                solo_fct_secs: solo,
            },
        );
    }
    print!("{}", table.render());
    println!();
    println!("reading: under Baseline the victim queues behind megabytes of");
    println!("incast backlog (and risks drops); under the proxy schemes it only");
    println!("shares *bandwidth* with the paced relay stream — no buffer");
    println!("standing between it and the receiver — cutting its slowdown by");
    println!("6x (Streamlined). Rerouting the incast protects co-located");
    println!("services, not just the incast itself.");
}
