//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every `fig*` / `ablation_*` binary prints (a) a human-readable aligned
//! table and (b) one JSON line per data point (prefix `JSON `), so
//! EXPERIMENTS.md entries can be regenerated and diffed mechanically.
//!
//! Binaries accept `--quick` (1 run per point instead of the paper's 5,
//! smaller sweeps) so the whole suite can run in CI time; full runs
//! reproduce the §4.1 protocol exactly.

use serde::Serialize;

/// Command-line options shared by the reproduction binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Repetitions per experiment point (paper: 5).
    pub runs: usize,
    /// Reduced sweep for CI.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
}

impl RunOptions {
    /// Parses `--quick`, `--runs N`, `--seed N` from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses from a pre-split argument list (testable).
    pub fn parse(args: &[String]) -> Self {
        let mut opts = RunOptions {
            runs: 5,
            quick: false,
            seed: 1,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.runs = 1;
                }
                "--runs" => {
                    opts.runs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs a positive integer");
                }
                "--seed" => {
                    opts.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => panic!("unknown argument: {other} (try --quick / --runs N / --seed N)"),
            }
        }
        assert!(opts.runs > 0, "--runs must be positive");
        opts
    }
}

/// Hard-fails the binary when a simulation stopped on the event-count
/// safety cap. The cap exists to catch livelocks; a capped run is never a
/// valid data point, so the process exits non-zero instead of emitting a
/// silently-truncated figure. Returns the report unchanged otherwise, so
/// call sites can chain on it.
pub fn expect_no_event_cap(report: dcsim::sim::RunReport, context: &str) -> dcsim::sim::RunReport {
    if report.stop == dcsim::sim::StopReason::EventCap {
        eprintln!(
            "fatal: event cap exhausted ({} events, simulated time {}) during {context} — \
             this indicates a livelock (or an undersized cap via set_event_cap); \
             the figure data would be truncated, aborting",
            report.events, report.end_time
        );
        std::process::exit(2);
    }
    report
}

/// Emits one machine-readable data point (JSON-prefixed line).
pub fn emit_json<T: Serialize>(figure: &str, point: &T) {
    println!(
        "JSON {}",
        serde_json::json!({ "figure": figure, "point": point })
    );
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("== {figure}: {description} ==");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_match_paper_protocol() {
        let o = RunOptions::parse(&[]);
        assert_eq!(o.runs, 5);
        assert!(!o.quick);
    }

    #[test]
    fn quick_mode_single_run() {
        let o = RunOptions::parse(&s(&["--quick"]));
        assert!(o.quick);
        assert_eq!(o.runs, 1);
    }

    #[test]
    fn explicit_runs_and_seed() {
        let o = RunOptions::parse(&s(&["--runs", "3", "--seed", "99"]));
        assert_eq!(o.runs, 3);
        assert_eq!(o.seed, 99);
    }

    #[test]
    fn quick_then_runs_overrides() {
        let o = RunOptions::parse(&s(&["--quick", "--runs", "2"]));
        assert!(o.quick);
        assert_eq!(o.runs, 2);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        RunOptions::parse(&s(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_runs_panics() {
        RunOptions::parse(&s(&["--runs", "0"]));
    }
}
