//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every `fig*` / `ablation_*` binary prints (a) a human-readable aligned
//! table and (b) one JSON line per data point (prefix `JSON `), so
//! EXPERIMENTS.md entries can be regenerated and diffed mechanically.
//!
//! Binaries accept `--quick` (1 run per point instead of the paper's 5,
//! smaller sweeps) so the whole suite can run in CI time; full runs
//! reproduce the §4.1 protocol exactly.
//!
//! Grids of independent simulations run through [`SweepRunner`], which
//! fans the cells out across threads (`--jobs N`, default: all cores)
//! while keeping results bit-identical to a serial walk: every cell's
//! seed derives from its configuration, never from thread order, and
//! results come back in grid order.

use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod cpfuzz;
pub mod fuzz;

/// Command-line options shared by the reproduction binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Repetitions per experiment point (paper: 5).
    pub runs: usize,
    /// Reduced sweep for CI.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for sweep execution (0 = auto-detect).
    pub jobs: usize,
}

impl RunOptions {
    /// Parses `--quick`, `--runs N`, `--seed N`, `--jobs N` from
    /// `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses from a pre-split argument list (testable).
    pub fn parse(args: &[String]) -> Self {
        let mut opts = RunOptions {
            runs: 5,
            quick: false,
            seed: 1,
            jobs: 0,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.runs = 1;
                }
                "--runs" => {
                    opts.runs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs a positive integer");
                }
                "--seed" => {
                    opts.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--jobs" => {
                    opts.jobs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs needs a non-negative integer (0 = auto)");
                }
                other => panic!(
                    "unknown argument: {other} (try --quick / --runs N / --seed N / --jobs N)"
                ),
            }
        }
        assert!(opts.runs > 0, "--runs must be positive");
        opts
    }

    /// The sweep runner configured by these options.
    pub fn sweep_runner(&self) -> SweepRunner {
        SweepRunner::new(self.jobs)
    }
}

/// Resolves a job count: explicit value, else `SWEEP_JOBS` /
/// `RAYON_NUM_THREADS` from the environment, else all available cores.
fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    for var in ["SWEEP_JOBS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var).ok().and_then(|v| v.parse().ok()) {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executes a grid of independent simulation cells across threads.
///
/// The determinism contract: `run` returns results **in input order**, and
/// the work function receives only the cell config — cells must derive all
/// randomness from their config (every experiment here seeds from
/// `derive_seed(config.seed, run_index)`), so the output is byte-identical
/// for any thread count, including 1. The regression test
/// `tests/sweep_determinism.rs` holds this line.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SweepRunner {
    /// Creates a runner with `jobs` worker threads (0 = auto: `SWEEP_JOBS`
    /// or `RAYON_NUM_THREADS` from the environment, else all cores).
    pub fn new(jobs: usize) -> Self {
        SweepRunner {
            jobs: resolve_jobs(jobs),
        }
    }

    /// A strictly serial runner (used as the reference in determinism
    /// tests).
    pub fn serial() -> Self {
        SweepRunner { jobs: 1 }
    }

    /// The resolved worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `work` over every cell, in parallel, returning results in
    /// cell order.
    ///
    /// Work is distributed by a shared atomic cursor, so threads never
    /// partition the grid statically — a slow cell does not straggle a
    /// whole stripe. A panicking cell propagates out of `run` (the scope
    /// join rethrows it), so a sweep never silently drops points.
    pub fn run<C, R, F>(&self, cells: &[C], work: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(&C) -> R + Sync,
    {
        let jobs = self.jobs.min(cells.len()).max(1);
        if jobs == 1 {
            return cells.iter().map(work).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    // ordering: Relaxed — work-stealing ticket counter; the
                    // Mutex around each result slot publishes the data.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = work(cell);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Runs `runs` repetitions of every cell — the `(cell, repetition)`
    /// pairs are flattened into one work pool so a small grid with many
    /// repetitions still fills every core — and returns the per-cell
    /// repetition results in `(cell order, repetition order)`.
    ///
    /// `work` receives the cell and the repetition index; it must derive
    /// its seed from those (e.g. `derive_seed(opts.seed, rep)`), never
    /// from any global state, to keep the sweep thread-count-invariant.
    pub fn run_repeated<C, R, F>(&self, cells: &[C], runs: usize, work: F) -> Vec<Vec<R>>
    where
        C: Sync,
        R: Send,
        F: Fn(&C, usize) -> R + Sync,
    {
        assert!(runs > 0, "need at least one run per cell");
        let pairs: Vec<(usize, usize)> = (0..cells.len())
            .flat_map(|c| (0..runs).map(move |r| (c, r)))
            .collect();
        let flat = self.run(&pairs, |&(c, r)| work(&cells[c], r));
        let mut flat = flat.into_iter();
        (0..cells.len())
            .map(|_| (0..runs).map(|_| flat.next().expect("full grid")).collect())
            .collect()
    }
}

/// Parallel drop-in for [`incast_core::run_repeated`] over a whole grid:
/// runs every `(config, repetition)` pair across the runner's threads and
/// returns per-config summaries in config order, bit-identical to calling
/// `incast_core::run_repeated` on each config serially (same seeds, same
/// order — see `tests/sweep_determinism.rs`).
pub fn sweep_experiments(
    runner: &SweepRunner,
    configs: &[incast_core::ExperimentConfig],
    runs: usize,
) -> Vec<(trace::Summary, Vec<incast_core::IncastOutcome>)> {
    runner
        .run_repeated(configs, runs, |config, r| {
            incast_core::run_incast(config, trace::derive_seed(config.seed, r as u64))
        })
        .into_iter()
        .map(|outcomes| {
            let secs: Vec<f64> = outcomes.iter().map(|o| o.completion_secs).collect();
            (trace::Summary::of(&secs), outcomes)
        })
        .collect()
}

/// Hard-fails the binary when a simulation stopped on the event-count
/// safety cap. The cap exists to catch livelocks; a capped run is never a
/// valid data point, so the process exits non-zero instead of emitting a
/// silently-truncated figure. Returns the report unchanged otherwise, so
/// call sites can chain on it.
pub fn expect_no_event_cap(report: dcsim::sim::RunReport, context: &str) -> dcsim::sim::RunReport {
    if report.stop == dcsim::sim::StopReason::EventCap {
        eprintln!(
            "fatal: event cap exhausted ({} events, simulated time {}) during {context} — \
             this indicates a livelock (or an undersized cap via set_event_cap); \
             the figure data would be truncated, aborting",
            report.events, report.end_time
        );
        std::process::exit(2);
    }
    report
}

/// Emits one machine-readable data point (JSON-prefixed line).
pub fn emit_json<T: Serialize>(figure: &str, point: &T) {
    println!(
        "JSON {}",
        serde_json::json!({ "figure": figure, "point": point })
    );
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("== {figure}: {description} ==");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_match_paper_protocol() {
        let o = RunOptions::parse(&[]);
        assert_eq!(o.runs, 5);
        assert!(!o.quick);
    }

    #[test]
    fn quick_mode_single_run() {
        let o = RunOptions::parse(&s(&["--quick"]));
        assert!(o.quick);
        assert_eq!(o.runs, 1);
    }

    #[test]
    fn explicit_runs_and_seed() {
        let o = RunOptions::parse(&s(&["--runs", "3", "--seed", "99"]));
        assert_eq!(o.runs, 3);
        assert_eq!(o.seed, 99);
    }

    #[test]
    fn quick_then_runs_overrides() {
        let o = RunOptions::parse(&s(&["--quick", "--runs", "2"]));
        assert!(o.quick);
        assert_eq!(o.runs, 2);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        RunOptions::parse(&s(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_runs_panics() {
        RunOptions::parse(&s(&["--runs", "0"]));
    }

    #[test]
    fn jobs_flag_parses_and_defaults_to_auto() {
        assert_eq!(RunOptions::parse(&[]).jobs, 0);
        let o = RunOptions::parse(&s(&["--jobs", "3"]));
        assert_eq!(o.jobs, 3);
        assert_eq!(o.sweep_runner().jobs(), 3);
        assert!(RunOptions::parse(&[]).sweep_runner().jobs() >= 1);
    }

    #[test]
    fn sweep_preserves_input_order() {
        let cells: Vec<usize> = (0..97).collect();
        let got = SweepRunner::new(8).run(&cells, |&c| c * 10);
        assert_eq!(got, cells.iter().map(|c| c * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_parallel_matches_serial() {
        // A cheap config-seeded computation: parallel result vectors must
        // be identical to the serial walk for any job count.
        let cells: Vec<u64> = (0..64).collect();
        let work = |&seed: &u64| {
            let mut rng = trace::SplitMix64::new(seed);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let serial = SweepRunner::serial().run(&cells, work);
        for jobs in [2, 4, 16] {
            assert_eq!(SweepRunner::new(jobs).run(&cells, work), serial);
        }
    }

    #[test]
    fn sweep_handles_empty_and_oversized_pools() {
        let empty: Vec<u32> = Vec::new();
        assert!(SweepRunner::new(4).run(&empty, |&c| c).is_empty());
        // More workers than cells: every cell still runs exactly once.
        let cells = vec![1u32, 2, 3];
        assert_eq!(SweepRunner::new(64).run(&cells, |&c| c + 1), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn sweep_propagates_worker_panics() {
        let cells: Vec<u32> = (0..8).collect();
        SweepRunner::new(4).run(&cells, |&c| {
            if c == 5 {
                panic!("cell failure must not be swallowed");
            }
            c
        });
    }
}
