//! Regression test for the sweep runner's determinism contract: a grid
//! of simulations executed in parallel must produce results that are
//! *byte-identical* to a serial walk of the same grid — same seeds, same
//! order, same floating-point values. This is what lets the figure
//! binaries default to all cores without anyone re-validating outputs.

use bench::{sweep_experiments, SweepRunner};
use incast_core::{ExperimentConfig, IncastOutcome, Scheme};

/// Small, fast grid covering every scheme and two degrees — enough cells
/// (8) to exercise real thread interleaving without taking CI minutes.
fn grid() -> Vec<ExperimentConfig> {
    let mut configs = Vec::new();
    for &degree in &[2usize, 3] {
        for scheme in Scheme::ALL {
            configs.push(ExperimentConfig {
                topo: dcsim::topology::TwoDcParams::small_test(),
                scheme,
                degree,
                total_bytes: 2_000_000,
                seed: 7,
                ..Default::default()
            });
        }
    }
    configs
}

/// Exact textual fingerprint of an outcome. Floats are rendered through
/// `to_bits`, so the comparison is bit-level, not approximate.
fn fingerprint(outcomes: &[(trace::Summary, Vec<IncastOutcome>)]) -> String {
    let mut out = String::new();
    for (summary, runs) in outcomes {
        out.push_str(&format!(
            "summary {} {:x} {:x} {:x} {:x}\n",
            summary.count,
            summary.mean.to_bits(),
            summary.min.to_bits(),
            summary.max.to_bits(),
            summary.std.to_bits(),
        ));
        for o in runs {
            out.push_str(&format!(
                "run {:x} {} {} {} {} {} {} {} {} {} {:x} {}\n",
                o.completion_secs.to_bits(),
                o.proxy_nacks,
                o.receiver_nacks,
                o.rto_fires,
                o.retransmits,
                o.window_decreases,
                o.failover_activations,
                o.failbacks,
                o.proxy_probes,
                o.packets_lost_to_fault,
                o.failover_latency_max_secs.to_bits(),
                o.events,
            ));
        }
    }
    out
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let configs = grid();
    let runs = 2;
    let serial = fingerprint(&sweep_experiments(&SweepRunner::serial(), &configs, runs));
    for jobs in [2, 4, 16] {
        let parallel = fingerprint(&sweep_experiments(&SweepRunner::new(jobs), &configs, runs));
        assert_eq!(
            serial, parallel,
            "parallel sweep with {jobs} jobs diverged from the serial reference"
        );
    }
}

#[test]
fn parallel_sweep_matches_core_run_repeated() {
    // The parallel helper must be a drop-in for incast_core::run_repeated
    // applied per config: same seed derivation, same ordering.
    let configs = grid();
    let reference: Vec<_> = configs
        .iter()
        .map(|c| incast_core::run_repeated(c, 2))
        .collect();
    let swept = sweep_experiments(&SweepRunner::new(4), &configs, 2);
    assert_eq!(fingerprint(&reference), fingerprint(&swept));
}
