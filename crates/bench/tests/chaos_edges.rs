//! Targeted crash-timing edge cases for the Streamlined proxy, run under
//! the strict invariant auditor with the liveness watchdog armed.
//!
//! The chaos fuzzer explores these transitions randomly; these two tests
//! pin the nastiest timings deterministically:
//!
//! * the proxy is dead **during the first flight** (it crashes at the
//!   exact incast start, so every sender's initial window arrives at a
//!   black hole), and
//! * the proxy crashes **while its early NACKs are in flight** back to
//!   the senders (trims happened, NACKs left the proxy, then it died —
//!   the senders act on feedback from a proxy that no longer exists).
//!
//! In both cases the incast must still complete (the paper's §3 argument:
//! the proxy holds no hard state, so end-to-end retransmission plus
//! restore recovers everything) and the strict auditor must stay silent —
//! any leaked packet, broken queue accounting, or wedged flow panics.

use dcsim::prelude::*;
use incast_core::scheme::{install_incast, IncastHandle};
use incast_core::{ExperimentConfig, Scheme};

fn config(total_bytes: u64, degree: usize) -> ExperimentConfig {
    ExperimentConfig {
        scheme: Scheme::ProxyStreamlined,
        degree,
        total_bytes,
        topo: TwoDcParams::small_test().with_wan_latency(SimDuration::from_micros(200)),
        failover: Some(FailoverConfig::default()),
        ..Default::default()
    }
}

fn audited_sim(config: &ExperimentConfig, seed: u64) -> (Simulator, IncastHandle) {
    let params = config
        .topo
        .with_trim(config.trim.enabled_for(config.scheme));
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    sim.set_audit(
        AuditConfig::strict()
            .every(Some(10_000))
            .with_liveness(SimDuration::from_secs(8)),
    );
    let spec = config.placement(sim.topology());
    let handle = install_incast(&mut sim, &spec, config.scheme);
    (sim, handle)
}

fn run_to_completion(sim: &mut Simulator, handle: &IncastHandle) -> RunReport {
    let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(120)));
    assert_eq!(report.stop, StopReason::Idle, "must drain: {report:?}");
    assert_eq!(report.terminated_reason(), TerminatedReason::Completed);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        handle.completion(sim.metrics()).is_some(),
        "incast must complete despite the crash"
    );
    report
}

#[test]
fn proxy_crash_during_first_flight_recovers_clean() {
    let config = config(400_000, 4);
    let (mut sim, handle) = audited_sim(&config, 7);
    let proxy = handle.proxy_agent.expect("streamlined exposes its proxy");
    // Down at the exact start: every sender's initial window arrives at a
    // crashed proxy and is destroyed. Restore half a millisecond later.
    let plan = FaultPlan::new().crash_agent_window(
        proxy,
        handle.start,
        handle.start + SimDuration::from_micros(500),
    );
    sim.install_faults(&plan).expect("valid plan");
    run_to_completion(&mut sim, &handle);
    let lost = sim.metrics().counter(Counter::PacketsLostToFault);
    assert!(lost > 0, "the first flight must have hit the dead proxy");
    // Conservation, belt and braces on top of the auditor: every packet
    // ever created reached a terminal disposition.
    let ledger = sim.ledger();
    assert_eq!(ledger.created, ledger.terminal(), "{ledger:?}");
}

#[test]
fn proxy_crash_with_nacks_in_flight_recovers_clean() {
    // Overload the proxy's downlink so the first flight trims and the
    // proxy emits early NACKs immediately, then kill it while those NACKs
    // are still flying back to the senders.
    let mut config = config(1_200_000, 6);
    config.topo.dc_queue.capacity_bytes = 30_000;
    let (mut sim, handle) = audited_sim(&config, 11);
    let proxy = handle.proxy_agent.expect("streamlined exposes its proxy");
    let crash_at = handle.start + SimDuration::from_micros(30);
    let plan = FaultPlan::new().crash_agent_window(
        proxy,
        crash_at,
        crash_at + SimDuration::from_micros(500),
    );
    sim.install_faults(&plan).expect("valid plan");
    // The proxy must already have NACKed before the crash for the test to
    // exercise the intended interleaving.
    sim.run(Some(crash_at));
    assert!(
        sim.metrics().counter(Counter::ProxyNacks) > 0,
        "first flight must trim and NACK before the crash ({} queued bytes)",
        config.topo.dc_queue.capacity_bytes,
    );
    run_to_completion(&mut sim, &handle);
    let ledger = sim.ledger();
    assert_eq!(ledger.created, ledger.terminal(), "{ledger:?}");
    assert!(ledger.trimmed > 0, "trimming was the point: {ledger:?}");
}
