//! Replays every committed chaos-fuzzer repro in `tests/repros/`.
//!
//! Each repro file records a scenario the fuzzer once shrank out of a
//! failing campaign, plus an expectation:
//!
//! * `"expect": "clean"` — the bug it reproduced has been fixed; the
//!   scenario must now run without panics, invariant violations, or an
//!   event-cap blowup. These are regression tests.
//! * `"expect": "<kind>"` — a documented known issue; the scenario must
//!   still fail with exactly that kind (if it stops reproducing, the
//!   issue is fixed and the file should be flipped to `"clean"`).
//!
//! Every replay runs the scenario **twice** and asserts the runs are
//! identical, so the suite also pins the fuzzer's determinism guarantee.
//!
//! Repros come in two families, dispatched on the file's `"type"` tag:
//! full-simulator scenarios (`bench::fuzz`) and sharded control-plane
//! scenarios (`bench::cpfuzz`, tagged `"control-plane"`).

use bench::cpfuzz;
use bench::fuzz::{check_replay, failure_kind, ReproFile};

fn repro_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros")
}

#[test]
fn committed_repros_replay_deterministically_and_match_expectations() {
    let mut paths: Vec<_> = std::fs::read_dir(repro_dir())
        .expect("tests/repros must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no repro files found");

    // Known-issue repros fail inside catch_unwind only if the failure is a
    // panic; none currently are, but keep the hook quiet just in case a
    // future repro documents one.
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable repro");
        if cpfuzz::is_control_plane_repro(&text) {
            let repro = cpfuzz::CpReproFile::from_json(&text)
                .unwrap_or_else(|e| panic!("{name}: unparsable control-plane repro: {e}"));
            let (outcome, deterministic) = cpfuzz::check_replay(&repro.scenario);
            assert!(
                deterministic,
                "{name}: two consecutive replays diverged: {outcome:?}"
            );
            assert!(
                repro.matches(&outcome),
                "{name}: expected {:?}, observed {:?} ({outcome:?})",
                repro.expect,
                cpfuzz::failure_kind(&outcome).as_deref().unwrap_or("clean"),
            );
            continue;
        }
        let repro =
            ReproFile::from_json(&text).unwrap_or_else(|e| panic!("{name}: unparsable repro: {e}"));
        let (outcome, deterministic) = check_replay(&repro.scenario);
        assert!(
            deterministic,
            "{name}: two consecutive replays diverged: {outcome:?}"
        );
        let observed = failure_kind(&outcome);
        assert!(
            repro.matches(&outcome),
            "{name}: expected {:?}, observed {:?} ({outcome:?})",
            repro.expect,
            observed.as_deref().unwrap_or("clean"),
        );
    }
}
