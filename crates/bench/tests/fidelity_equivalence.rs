//! Hybrid-fidelity equivalence (ISSUE 7, satellite 3).
//!
//! The express path advances packets through uncontended queues
//! analytically. Cold ports draw no ECN randomness and the virtual
//! horizon reproduces exact FIFO store-and-forward timing, but the
//! *interleaving* of RNG draws across flows shifts once spray decisions
//! collapse into a single walk, so hybrid runs are statistically — not
//! bit — equivalent to full packet fidelity. These tests pin that claim
//! down to a concrete tolerance at small scale, for every scheme, under
//! the strict invariant auditor (ledger conservation across the fidelity
//! boundary included).

use dcsim::prelude::*;
use incast_core::experiment::{run_incast, ExperimentConfig};
use incast_core::Scheme;

/// Maximum relative FCT deviation hybrid fidelity may introduce at small
/// scale. Documented in DESIGN.md §12; tightening it is welcome, loosening
/// it needs a written justification.
const FCT_TOLERANCE: f64 = 0.05;

fn config(scheme: Scheme, degree: usize) -> ExperimentConfig {
    ExperimentConfig {
        topo: TwoDcParams {
            spines_per_dc: 2,
            leaves_per_dc: 4,
            hosts_per_leaf: 5, // 20 hosts/DC: room for degree 16 + proxy
            ..TwoDcParams::small_test()
        },
        scheme,
        degree,
        total_bytes: 4_000_000,
        seed: 21,
        audit: Some(AuditConfig::strict()),
        ..Default::default()
    }
}

#[test]
fn hybrid_fct_matches_full_fidelity_within_tolerance() {
    for scheme in Scheme::ALL {
        for degree in [3, 16] {
            let full = run_incast(&config(scheme, degree), 2);
            let mut hybrid_cfg = config(scheme, degree);
            hybrid_cfg.fidelity = true;
            let hybrid = run_incast(&hybrid_cfg, 2);
            assert!(
                hybrid.express_saved_events > 0,
                "{scheme}/deg{degree}: express path never engaged"
            );
            let rel = (hybrid.completion_secs - full.completion_secs).abs() / full.completion_secs;
            println!(
                "{scheme}/deg{degree}: full={:.6}s hybrid={:.6}s rel={:.4} \
                 events {} -> {} (saved {})",
                full.completion_secs,
                hybrid.completion_secs,
                rel,
                full.events,
                hybrid.events,
                hybrid.express_saved_events
            );
            assert!(
                rel <= FCT_TOLERANCE,
                "{scheme}/deg{degree}: hybrid FCT {:.6}s deviates {:.2}% from \
                 full-fidelity {:.6}s (tolerance {:.0}%)",
                hybrid.completion_secs,
                rel * 100.0,
                full.completion_secs,
                FCT_TOLERANCE * 100.0
            );
        }
    }
}

#[test]
fn hybrid_runs_clean_under_strict_audit_with_faults() {
    // Strict audit panics on any violation; a receiver link flap forces
    // packets to die and ports to flip hot mid-flight, crossing the
    // fidelity boundary with the ledger watching.
    use incast_core::experiment::FaultScenario;
    let mut cfg = config(Scheme::ProxyStreamlined, 6);
    cfg.fidelity = true;
    cfg.faults = FaultScenario::ReceiverLinkFlap {
        after: SimDuration::from_micros(100),
        up_after: SimDuration::from_micros(500),
    };
    let out = run_incast(&cfg, 9);
    assert!(out.completion_secs > 0.0, "{out:?}");
    assert!(out.packets_lost_to_fault > 0, "{out:?}");
}

#[test]
fn hybrid_saves_a_meaningful_event_fraction() {
    // The point of the engine: most events on an uncontended fabric
    // shouldn't exist. At degree 3 the only contended port is the
    // receiver's down-ToR; the express path must elide a large share of
    // the per-hop events.
    let mut cfg = config(Scheme::Baseline, 3);
    cfg.fidelity = true;
    let out = run_incast(&cfg, 4);
    let effective = out.events + out.express_saved_events;
    let saved_frac = out.express_saved_events as f64 / effective as f64;
    println!(
        "events={} saved={} ({:.1}% of effective)",
        out.events,
        out.express_saved_events,
        saved_frac * 100.0
    );
    assert!(
        saved_frac > 0.2,
        "express path saved only {:.1}% of effective events",
        saved_frac * 100.0
    );
}
