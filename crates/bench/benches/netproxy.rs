//! Criterion benchmarks of the batched netproxy datapath's per-packet
//! CPU work: zero-copy [`DatagramView`] parsing vs. the owned
//! [`WireHeader::decode`] it replaced, the in-place TRIMMED→NACK header
//! rewrite vs. building a fresh NACK allocation, and zero-alloc
//! [`WireHeader::encode_into`] staging vs. allocating `encode`.
//!
//! Every benchmark processes one full receive ring ([`BATCH`] = 64
//! datagrams) per iteration — the datapath's actual unit of work — so
//! the per-iteration time sits in the microsecond range where scheduler
//! jitter amortizes instead of dominating; single-datagram times on
//! these paths are 2–50 ns and ungateable on a shared runner.
//! `scripts/perfgate.sh` holds the medians against the committed
//! `BENCH_netproxy.json` baseline; the throughput numbers (pkts/sec
//! through the sharded relay) live in `scripts/bench_netproxy.sh`'s
//! loadgen sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netproxy::wire::{rewrite_trimmed_to_nack, MAX_PAYLOAD};
use netproxy::{DatagramView, Flags, SendQueue, WireHeader, BATCH, MAX_DATAGRAM};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("netproxy_parse");
    group.throughput(Throughput::Elements(BATCH as u64));
    let wire = WireHeader::data(7, 42, MAX_PAYLOAD as u16).encode(&vec![0u8; MAX_PAYLOAD]);

    // The batched datapath's hot path: borrow each receive-ring slot,
    // read the four header fields, never copy the payload.
    group.bench_function("view_batch64_1400B", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                let v = DatagramView::parse(black_box(&wire)).expect("valid");
                acc = acc.wrapping_add(v.flow() ^ v.seq() ^ u64::from(v.payload_len()));
            }
            black_box(acc)
        })
    });
    // What the per-datagram proxies do: decode into an owned header
    // (field copies) plus a borrowed payload slice.
    group.bench_function("owned_decode_batch64_1400B", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                let (h, _p) = WireHeader::decode(black_box(&wire)).expect("valid");
                acc = acc.wrapping_add(h.flow ^ h.seq);
            }
            black_box(acc)
        })
    });
    // Rejection must be as cheap as acceptance — garbage floods the
    // proxy port in the incast scenarios.
    let junk = [0xA5u8; 64];
    group.bench_function("view_reject_batch64_garbage", |b| {
        b.iter(|| {
            let mut rejected = 0u32;
            for _ in 0..BATCH {
                rejected += u32::from(DatagramView::parse(black_box(&junk)).is_err());
            }
            black_box(rejected)
        })
    });
    group.finish();
}

fn bench_nack_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("netproxy_nack");
    group.throughput(Throughput::Elements(BATCH as u64));
    let trimmed = WireHeader::trimmed(7, 42).encode(&[]);

    // In-place: flip the flags byte of the TRIMMED header already
    // sitting in the receive ring and send the same buffer back.
    group.bench_function("rewrite_in_place_batch64", |b| {
        let mut ring = vec![[0u8; MAX_DATAGRAM]; BATCH];
        b.iter(|| {
            let mut acc = 0u32;
            for slot in ring.iter_mut() {
                slot[..trimmed.len()].copy_from_slice(&trimmed);
                rewrite_trimmed_to_nack(black_box(&mut slot[..trimmed.len()])).expect("trimmed");
                acc += u32::from(slot[2]);
            }
            black_box(acc)
        })
    });
    // Allocating: what the per-datagram streamlined proxy does — decode
    // the TRIMMED header, build a fresh NACK, encode into a new Bytes.
    group.bench_function("decode_then_encode_batch64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..BATCH {
                let (h, _) = WireHeader::decode(black_box(&trimmed)).expect("valid");
                acc += WireHeader::nack(h.flow, h.seq).encode(&[]).len();
            }
            black_box(acc)
        })
    });
    // Detector-driven NACKs (no inbound TRIMMED buffer to reuse): stage
    // a full batch of inline NACKs into the send queue and recycle it —
    // the shard worker's actual path (write_nack_into + queue entry).
    group.bench_function("queue_inline_nacks_batch64", |b| {
        let mut queue = SendQueue::new();
        let dest: std::net::SocketAddr = "127.0.0.1:9".parse().unwrap();
        b.iter(|| {
            queue.clear();
            for i in 0..BATCH as u64 {
                queue.push_nack(black_box(7), black_box(i), black_box(dest));
            }
            black_box(queue.is_empty())
        })
    });
    group.finish();
}

fn bench_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("netproxy_stage");
    group.throughput(Throughput::Elements(BATCH as u64));
    let payload = vec![0u8; 64];
    let header = WireHeader::data(7, 42, 64);

    // Zero-alloc: serialize straight into ring slots (the loadgen's
    // staging path — one of these per generated packet).
    group.bench_function("encode_into_batch64_64B", |b| {
        let mut ring = vec![[0u8; MAX_DATAGRAM]; BATCH];
        b.iter(|| {
            let mut total = 0usize;
            for slot in ring.iter_mut() {
                total += header.encode_into(black_box(slot), black_box(&payload));
            }
            black_box(total)
        })
    });
    // Allocating equivalent for comparison.
    group.bench_function("encode_alloc_batch64_64B", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..BATCH {
                total += header.encode(black_box(&payload)).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

/// The composed per-batch relay decision as the shard worker runs it:
/// parse each view, branch on flags, rewrite or pass through. This
/// bounds single-shard pkts/sec from above.
fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("netproxy_classify");
    group.throughput(Throughput::Elements(BATCH as u64));
    let data = WireHeader::data(7, 42, 64).encode(&[0u8; 64]);
    let trimmed = WireHeader::trimmed(7, 42).encode(&[]);

    group.bench_function("data_passthrough_batch64", |b| {
        b.iter(|| {
            let mut forwards = 0u32;
            for _ in 0..BATCH {
                let v = DatagramView::parse(black_box(&data)).expect("valid");
                let fwd = v.flags().contains(Flags::DATA) && !v.flags().contains(Flags::TRIMMED);
                forwards += u32::from(fwd);
            }
            black_box(forwards)
        })
    });
    group.bench_function("trimmed_to_nack_batch64", |b| {
        let mut ring = vec![[0u8; MAX_DATAGRAM]; BATCH];
        b.iter(|| {
            let mut acc = 0u32;
            for slot in ring.iter_mut() {
                slot[..trimmed.len()].copy_from_slice(&trimmed);
                let flags = DatagramView::parse(&slot[..trimmed.len()])
                    .expect("valid")
                    .flags();
                if flags.contains(Flags::TRIMMED) {
                    rewrite_trimmed_to_nack(&mut slot[..trimmed.len()]).expect("trimmed");
                }
                acc += u32::from(slot[2]);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_nack_path,
    bench_stage,
    bench_classify
);
criterion_main!(benches);
