//! Criterion benchmarks of control-plane decision throughput: how many
//! select/renew/release decisions per second the sharded orchestrator
//! sustains with 1000+ concurrent incasts holding leases, on a healthy
//! plane and while degraded by a shard crash.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcsim::packet::HostId;
use dcsim::time::{SimDuration, SimTime};
use incast_core::orchestrator::{IncastRequest, ProxySelector, ShardedConfig, ShardedOrchestrator};

const CONCURRENT: u64 = 1024;
const CANDIDATES: u32 = 64;

fn request(id: u64) -> IncastRequest {
    IncastRequest {
        id,
        senders: vec![HostId(1000), HostId(1001)],
        receiver: HostId(2000 + (id as u32 % 16)),
        expected_bytes: 1 << 20,
    }
}

/// A plane already carrying `CONCURRENT` live leases — the steady state
/// every decision below executes against.
fn loaded_plane(crash: bool) -> (ShardedOrchestrator, SimTime) {
    let mut orch = ShardedOrchestrator::new(
        (0..CANDIDATES).map(HostId).collect(),
        ShardedConfig::default(),
        42,
    );
    if crash {
        orch.crash_shard(0);
        // Let gossip converge so grants for the dead shard's receivers go
        // through sibling takeover rather than the pre-convergence fallback.
        orch.advance_to(SimTime::ZERO + SimDuration::from_millis(4));
    }
    let now = SimTime::ZERO + SimDuration::from_millis(4);
    orch.advance_to(now);
    for id in 0..CONCURRENT {
        orch.select(&request(id)).expect("grant");
    }
    (orch, now)
}

/// One decision = release a lease, grant its replacement. Measured as a
/// pair so the standing population stays at `CONCURRENT` forever.
fn bench_select_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_decisions");
    group.throughput(Throughput::Elements(2)); // release + select
    for (label, crash) in [
        ("healthy_1024_concurrent", false),
        ("crashed_1024_concurrent", true),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &crash, |b, &crash| {
            let (mut orch, _now) = loaded_plane(crash);
            let mut next = CONCURRENT;
            let mut oldest = 0u64;
            b.iter(|| {
                orch.release(oldest);
                oldest += 1;
                let a = orch.select(&request(next)).expect("grant");
                next += 1;
                black_box(a.proxy)
            });
        });
    }
    group.finish();
}

/// The renewal sweep every epoch performs: one renew per live lease.
fn bench_renew_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_renew");
    group.throughput(Throughput::Elements(CONCURRENT));
    for (label, crash) in [("healthy_1024_sweep", false), ("crashed_1024_sweep", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &crash, |b, &crash| {
            let (mut orch, now) = loaded_plane(crash);
            // Renew inside the TTL so the sweep is the steady-state path,
            // not a cascade of expirations.
            let at = now + SimDuration::from_millis(1);
            orch.advance_to(at);
            b.iter(|| {
                for id in 0..CONCURRENT {
                    black_box(orch.renew(id, at));
                }
            });
        });
    }
    group.finish();
}

/// The clock tick itself: gossip delivery, expiry scan, heartbeat fanout
/// with 1024 leases standing.
fn bench_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_advance");
    group.throughput(Throughput::Elements(1));
    group.bench_function("advance_one_heartbeat_1024_leases", |b| {
        let (mut orch, now) = loaded_plane(false);
        let mut at = now;
        let step = SimDuration::from_millis(1);
        b.iter(|| {
            at += step;
            orch.advance_to(at);
            // Keep every lease alive so the population never decays.
            for id in 0..CONCURRENT {
                orch.renew(id, at);
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_select_release,
    bench_renew_sweep,
    bench_advance
);
criterion_main!(benches);
