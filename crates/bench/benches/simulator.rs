//! Criterion benchmarks of end-to-end simulator throughput: how many
//! events per second the engine processes for representative incasts.
//! These keep the figure binaries' runtimes honest as the code evolves.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcsim::events::{Event, EventQueue, TimerKind};
use dcsim::packet::AgentId;
use dcsim::time::SimTime;
use dcsim::topology::TwoDcParams;
use incast_core::{run_incast, ExperimentConfig, Scheme};
use trace::SplitMix64;

/// Schedule/pop churn with a large standing population of pending events:
/// the steady state of a big simulation, where every pop is followed by a
/// re-schedule further in the future. Sweeps the pending-set size from
/// 10k to 1M to expose cache effects in the queue's layout.
fn bench_event_queue_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_churn");
    group.throughput(Throughput::Elements(1));
    for pending in [10_000u64, 100_000, 1_000_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pending),
            &pending,
            |b, &pending| {
                let mut q = EventQueue::with_capacity(pending as usize);
                let mut rng = SplitMix64::new(42);
                let mut t = 0u64;
                for _ in 0..pending {
                    t += rng.next_bounded(1000);
                    q.schedule(
                        SimTime(t),
                        Event::Timer {
                            agent: AgentId(0),
                            kind: TimerKind::Rto,
                        },
                    );
                }
                b.iter(|| {
                    let (at, _e) = q.pop().expect("non-empty");
                    q.schedule(
                        SimTime(at.0 + 1 + rng.next_bounded(1000)),
                        Event::Timer {
                            agent: AgentId(0),
                            kind: TimerKind::Rto,
                        },
                    );
                    at
                });
            },
        );
    }
    group.finish();
}

/// The hot path the cancelable-timer-slot rework targets. Two views of
/// it: the raw queue operation (reschedule-in-place against a large
/// standing population, which replaced push + eventual stale pop), and
/// an ACK-heavy incast where every arriving ACK moves the sender's RTO.
fn bench_timer_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer_churn");
    group.throughput(Throughput::Elements(1));
    group.bench_function("reschedule_in_place_100k_pending", |b| {
        let mut q = EventQueue::with_capacity(100_001);
        let mut rng = SplitMix64::new(7);
        for _ in 0..100_000 {
            q.schedule(
                SimTime(1 + rng.next_bounded(1_000_000_000)),
                Event::Timer {
                    agent: AgentId(0),
                    kind: TimerKind::Rto,
                },
            );
        }
        let h = q.schedule_cancelable(
            SimTime(1),
            Event::Timer {
                agent: AgentId(1),
                kind: TimerKind::Rto,
            },
        );
        b.iter(|| {
            let at = SimTime(1 + rng.next_bounded(1_000_000_000));
            black_box(q.reschedule(h, at))
        });
    });
    group.sample_size(10);
    group.bench_function("ack_heavy_incast_deg7_1MB", |b| {
        // Max fan-in the small topology supports (8 hosts per DC, one of
        // which is the proxy): every ACK rearms that sender's RTO slot.
        let config = ExperimentConfig {
            topo: TwoDcParams::small_test(),
            scheme: Scheme::ProxyStreamlined,
            degree: 7,
            total_bytes: 1_000_000,
            ..Default::default()
        };
        b.iter(|| run_incast(&config, 1));
    });
    group.finish();
}

fn bench_incast_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_incast");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::new("small_topo_2MB_deg3", scheme.label()),
            &scheme,
            |b, &scheme| {
                let config = ExperimentConfig {
                    topo: TwoDcParams::small_test(),
                    scheme,
                    degree: 3,
                    total_bytes: 2_000_000,
                    ..Default::default()
                };
                b.iter(|| run_incast(&config, 1));
            },
        );
    }
    group.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    // Measure raw engine throughput on a fixed mid-size run and report it
    // as events/second via Criterion's throughput machinery.
    let config = ExperimentConfig {
        topo: TwoDcParams::small_test(),
        scheme: Scheme::Baseline,
        degree: 3,
        total_bytes: 5_000_000,
        ..Default::default()
    };
    let events = run_incast(&config, 1).events;
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    group.bench_function("events_per_second_baseline_5MB", |b| {
        b.iter(|| run_incast(&config, 1));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue_churn,
    bench_timer_churn,
    bench_incast_simulation,
    bench_event_rate
);
criterion_main!(benches);
