//! Criterion benchmarks of end-to-end simulator throughput: how many
//! events per second the engine processes for representative incasts.
//! These keep the figure binaries' runtimes honest as the code evolves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcsim::topology::TwoDcParams;
use incast_core::{run_incast, ExperimentConfig, Scheme};

fn bench_incast_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_incast");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::new("small_topo_2MB_deg3", scheme.label()),
            &scheme,
            |b, &scheme| {
                let config = ExperimentConfig {
                    topo: TwoDcParams::small_test(),
                    scheme,
                    degree: 3,
                    total_bytes: 2_000_000,
                    ..Default::default()
                };
                b.iter(|| run_incast(&config, 1));
            },
        );
    }
    group.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    // Measure raw engine throughput on a fixed mid-size run and report it
    // as events/second via Criterion's throughput machinery.
    let config = ExperimentConfig {
        topo: TwoDcParams::small_test(),
        scheme: Scheme::Baseline,
        degree: 3,
        total_bytes: 5_000_000,
        ..Default::default()
    };
    let events = run_incast(&config, 1).events;
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    group.bench_function("events_per_second_baseline_5MB", |b| {
        b.iter(|| run_incast(&config, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_incast_simulation, bench_event_rate);
criterion_main!(benches);
