//! Criterion benchmark of the streamlined proxy's critical-path logic —
//! the rigorous version of Figure 5a's lower bound: wire decode + the
//! forward/NACK decision, no I/O.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netproxy::wire::WireHeader;
use netproxy::{decide, Action};

fn bench_decide(c: &mut Criterion) {
    let data = WireHeader::data(1, 1, 1000).encode(&vec![0u8; 1000]);
    let trimmed = WireHeader::trimmed(1, 2).encode(&[]);
    let ack = WireHeader::ack(1, 3).encode(&[]);

    let mut group = c.benchmark_group("streamlined_decision");
    group.throughput(Throughput::Elements(1));
    group.bench_function("data_forward", |b| {
        b.iter(|| {
            let a = decide(black_box(&data));
            debug_assert_eq!(a, Action::ForwardToReceiver);
            black_box(a)
        })
    });
    group.bench_function("trimmed_nack", |b| {
        b.iter(|| {
            let a = decide(black_box(&trimmed));
            debug_assert!(matches!(a, Action::NackToSender { .. }));
            black_box(a)
        })
    });
    group.bench_function("ack_reverse", |b| {
        b.iter(|| black_box(decide(black_box(&ack))))
    });
    group.bench_function("garbage_drop", |b| {
        let junk = [0u8; 64];
        b.iter(|| black_box(decide(black_box(&junk))))
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_format");
    group.throughput(Throughput::Elements(1));
    let payload = vec![0u8; 1400];
    group.bench_function("encode_data_1400B", |b| {
        let h = WireHeader::data(1, 1, 1400);
        b.iter(|| black_box(h.encode(black_box(&payload))))
    });
    let wire = WireHeader::data(1, 1, 1400).encode(&payload);
    group.bench_function("decode_data_1400B", |b| {
        b.iter(|| black_box(WireHeader::decode(black_box(&wire)).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_decide, bench_wire);
criterion_main!(benches);
