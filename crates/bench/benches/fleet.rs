//! Criterion benchmarks of the sharded hybrid-fidelity fleet engine: a
//! small two-pod fleet (4 shards) run end-to-end, once at full packet
//! fidelity and once hybrid. Throughput is reported in *effective*
//! events (processed + elided by the express path) so the two
//! configurations are comparable; `scripts/perfgate.sh` holds the
//! medians against the committed `BENCH_fleet.json` baseline. The
//! headline 10M-events/sec measurement lives in the `fleet` binary —
//! this suite exists to catch regressions cheaply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcsim::prelude::*;
use dcsim::topology::{TopologyBuilder, TwoDcParams};

const PODS: usize = 2;
const SPINES: usize = 2;
const LEAVES: usize = 4;
const HOSTS_PER_LEAF: usize = 5;
const DEGREE: usize = 8;
const MICE_PER_DC: usize = 16;

/// Miniature of the `fleet` binary's topology: `PODS` two-DC leaf-spine
/// pods, backbone routers owned by each pod's DC0 shard, consecutive
/// pods' backbones chained long-haul for reachability.
fn build_fleet() -> (Topology, Vec<Vec<HostId>>) {
    let p = TwoDcParams::small_test();
    let mut b = TopologyBuilder::new();
    let mut pod_hosts = Vec::new();
    let mut backbones: Vec<Vec<NodeId>> = Vec::new();
    for pod in 0..PODS as u32 {
        let dcs = [2 * pod, 2 * pod + 1];
        let mut spines = vec![Vec::new(); 2];
        let mut hosts = Vec::new();
        for (side, &dc) in dcs.iter().enumerate() {
            let leaves: Vec<_> = (0..LEAVES)
                .map(|_| b.add_switch(NodeRole::Leaf, Some(dc)))
                .collect();
            spines[side] = (0..SPINES)
                .map(|_| b.add_switch(NodeRole::Spine, Some(dc)))
                .collect();
            for &leaf in &leaves {
                for _ in 0..HOSTS_PER_LEAF {
                    let h = b.add_host(Some(dc));
                    hosts.push(h);
                    b.add_duplex(b.host_node(h), leaf, p.dc_link, p.host_queue, p.dc_queue);
                }
                for &spine in &spines[side] {
                    b.add_duplex(leaf, spine, p.dc_link, p.dc_queue, p.dc_queue);
                }
            }
        }
        let mut pod_bbs = Vec::new();
        for (&s0, &s1) in spines[0].iter().zip(&spines[1]) {
            let bb = b.add_switch(NodeRole::Backbone, Some(dcs[0]));
            b.add_duplex(s0, bb, p.wan_link, p.dc_queue, p.backbone_queue);
            b.add_duplex(s1, bb, p.wan_link, p.dc_queue, p.backbone_queue);
            pod_bbs.push(bb);
        }
        backbones.push(pod_bbs);
        pod_hosts.push(hosts);
    }
    for w in backbones.windows(2) {
        b.add_duplex(
            w[0][0],
            w[1][0],
            dcsim::topology::LinkProps::long_haul(),
            p.backbone_queue,
            p.backbone_queue,
        );
    }
    (b.build(), pod_hosts)
}

fn run_fleet(topo: &Topology, pod_hosts: &[Vec<HostId>], hybrid: bool) -> u64 {
    let hosts_per_dc = LEAVES * HOSTS_PER_LEAF;
    let mut fleet = FleetSim::new(topo.clone(), 7);
    fleet.set_threads(1);
    fleet.set_event_cap(u64::MAX);
    if hybrid {
        fleet.set_fidelity(FidelityConfig::default());
    }
    for (pod, hosts) in pod_hosts.iter().enumerate() {
        let receiver = hosts[hosts_per_dc];
        if hybrid {
            let tor = fleet.topology().down_tor_port(receiver);
            fleet.pin_hot_port(tor);
        }
        for (s, &src) in hosts.iter().enumerate().take(DEGREE) {
            let spec = FlowSpec::new(src, receiver, 1_000_000);
            let start = SimTime(pod as u64 * 50_000_000 + s as u64 * 1_000_000);
            fleet.install_flow(spec, start);
        }
        for side in 0..2 {
            let dc = &hosts[side * hosts_per_dc..(side + 1) * hosts_per_dc];
            for i in 0..MICE_PER_DC {
                let spec = FlowSpec::new(
                    dc[(i + 1) % hosts_per_dc],
                    dc[(i + 8) % hosts_per_dc],
                    256_000,
                );
                let start = SimTime(pod as u64 * 50_000_000 + i as u64 * 50_000_000);
                fleet.install_flow(spec, start);
            }
        }
    }
    let report = fleet.run(None);
    assert_eq!(report.stop, StopReason::Idle);
    report.events + report.express.saved_events
}

fn bench_fleet(c: &mut Criterion) {
    let (topo, pod_hosts) = build_fleet();
    // Both configurations process the same traffic, so both are rated in
    // effective events (identical within ~1% between the two modes).
    let effective = run_fleet(&topo, &pod_hosts, true);
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.throughput(Throughput::Elements(effective));
    for hybrid in [false, true] {
        let label = if hybrid { "hybrid" } else { "full_fidelity" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &hybrid, |b, &hybrid| {
            b.iter(|| run_fleet(&topo, &pod_hosts, hybrid));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
