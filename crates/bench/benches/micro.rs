//! Criterion micro-benchmarks of the hot data structures: the event
//! queue, the port queue (ECN + trimming), sequence tracking, the loss
//! detector, and the latency histogram.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dcsim::events::{Event, EventQueue, TimerKind};
use dcsim::packet::{AgentId, FlowId, HostId, Packet};
use dcsim::protocol::SeqSet;
use dcsim::queues::{PortQueue, QueueConfig};
use dcsim::time::SimTime;
use incast_core::lossdetect::{LossDetector, LossDetectorConfig};
use trace::{LogHistogram, SplitMix64};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("schedule_pop_1k_pending", |b| {
        let mut q = EventQueue::new();
        let mut rng = SplitMix64::new(1);
        let mut t = 0u64;
        for _ in 0..1000 {
            t += rng.next_bounded(1000);
            q.schedule(
                SimTime(t),
                Event::Timer {
                    agent: AgentId(0),
                    kind: TimerKind::Rto,
                },
            );
        }
        b.iter(|| {
            let (at, _e) = q.pop().expect("non-empty");
            q.schedule(
                SimTime(at.0 + 1 + rng.next_bounded(1000)),
                Event::Timer {
                    agent: AgentId(0),
                    kind: TimerKind::Rto,
                },
            );
            black_box(at)
        });
    });
    group.finish();
}

fn bench_port_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("port_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("enqueue_dequeue_datacenter_config", |b| {
        let mut q = PortQueue::new(QueueConfig::datacenter());
        let mut rng = SplitMix64::new(2);
        let pkt = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        b.iter(|| {
            q.enqueue(black_box(pkt), &mut rng);
            black_box(q.dequeue())
        });
    });
    group.bench_function("enqueue_trim_path", |b| {
        // Keep the data queue full so every enqueue trims.
        let cfg = QueueConfig {
            capacity_bytes: 1500,
            ctrl_capacity_bytes: 1_000_000_000,
            mark_low_bytes: 0,
            mark_high_bytes: 1500,
            trim: true,
        };
        let mut q = PortQueue::new(cfg);
        let mut rng = SplitMix64::new(3);
        let pkt = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        q.enqueue(pkt, &mut rng);
        b.iter(|| {
            q.enqueue(black_box(pkt), &mut rng); // trims
            let header = q.dequeue().expect("header"); // drains the ctrl queue
            black_box(header)
        });
    });
    group.finish();
}

fn bench_seqset(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_set");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_remove_70k", |b| {
        let mut s = SeqSet::new(70_000);
        let mut rng = SplitMix64::new(4);
        b.iter(|| {
            let seq = rng.next_bounded(70_000);
            s.insert(seq);
            black_box(s.remove(seq))
        });
    });
    group.finish();
}

fn bench_loss_detector(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss_detector");
    group.throughput(Throughput::Elements(1));
    group.bench_function("observe_in_order", |b| {
        let mut det = LossDetector::new(LossDetectorConfig::default());
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(det.observe(FlowId(0), seq))
        });
    });
    group.bench_function("observe_with_reordering", |b| {
        let mut det = LossDetector::new(LossDetectorConfig::default());
        let mut rng = SplitMix64::new(5);
        let mut base = 0u64;
        b.iter(|| {
            base += 1;
            let jitter = rng.next_bounded(4);
            black_box(det.observe(FlowId(0), base.saturating_sub(jitter)))
        });
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_histogram");
    group.throughput(Throughput::Elements(1));
    group.bench_function("record", |b| {
        let mut h = LogHistogram::new();
        let mut rng = SplitMix64::new(6);
        b.iter(|| h.record(black_box(rng.next_bounded(1_000_000_000))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_port_queue,
    bench_seqset,
    bench_loss_detector,
    bench_histogram
);
criterion_main!(benches);
