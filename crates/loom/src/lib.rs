//! A vendored, dependency-free model checker with a loom-compatible API.
//!
//! [`model`] runs a closure once per *distinct thread interleaving*,
//! exhaustively enumerating schedules by depth-first search: every
//! operation on a [`sync::atomic`] type is a scheduling point at which
//! the explorer picks which runnable thread executes next. Threads are
//! real OS threads, but a token-passing scheduler admits exactly one at
//! a time, so each execution is fully deterministic and replayable from
//! its decision prefix.
//!
//! Scope, honestly stated (DESIGN.md §14 has the full table):
//!
//! * **What it checks:** every interleaving of atomic operations under
//!   **sequential consistency** — lost updates, publish/lookup races,
//!   first-writer-wins violations, torn two-step publications, deadlocks
//!   between `join`s. This is the class of bug that one rare preemption
//!   between a CAS and its value store turns into silent corruption.
//! * **What it does not check:** weak-memory reorderings below SC.
//!   `Ordering` arguments are accepted (so the code under test compiles
//!   unchanged) but all operations execute SeqCst. Ordering-strength
//!   audit is simlint's `unjustified-atomic-ordering` rule plus the
//!   ThreadSanitizer CI job; upstream loom can be dropped in behind the
//!   same `cfg(loom)` shim when the environment has network access.
//!
//! The API mirrors the subset of `loom` the netproxy models need:
//! `loom::model`, `loom::thread::{spawn, yield_now}`,
//! `loom::sync::atomic::{AtomicU64, AtomicUsize, AtomicBool, Ordering}`,
//! and `loom::sync::Arc` (a plain `std::sync::Arc`: with SeqCst-only
//! exploration no causality tracking is needed).
//!
//! Outside a [`model`] call the atomic types degrade to plain SeqCst
//! `std` atomics, so code instrumented for model checking still runs —
//! unlike upstream loom, which panics. `thread::spawn` is model-only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc as StdArc, Condvar, Mutex};

/// Upper bound on executions explored before the model is declared too
/// large (panics rather than silently passing an incomplete check).
pub const MAX_EXECUTIONS: usize = 1_000_000;

/// Upper bound on scheduling decisions within one execution (catches
/// runaway loops inside a model).
pub const MAX_DECISIONS: usize = 10_000;

// ---------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------

/// One recorded scheduling decision: which of the `runnable` threads
/// (index into the id-sorted runnable list) got the next operation.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    runnable: usize,
}

#[derive(Debug)]
struct ThreadState {
    done: bool,
    /// `Some(t)` while blocked in `join` on unfinished thread `t`.
    blocked_on: Option<usize>,
}

#[derive(Debug)]
struct ExecState {
    threads: Vec<ThreadState>,
    /// Thread currently holding the execution token.
    current: usize,
    /// Decisions made so far this execution.
    decisions: Vec<Decision>,
    /// Replay prefix from the DFS driver (chosen indices).
    prefix: Vec<usize>,
    cursor: usize,
    /// First panic observed in any model thread, with its schedule.
    panic: Option<String>,
    finished: bool,
}

/// Shared state of one execution (one schedule).
struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    fn new(prefix: Vec<usize>) -> StdArc<Execution> {
        StdArc::new(Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState {
                    done: false,
                    blocked_on: None,
                }],
                current: 0,
                decisions: Vec::new(),
                prefix,
                cursor: 0,
                panic: None,
                finished: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Registers a new model thread; returns its id. Caller must hold
    /// the execution token (spawn is serialized like everything else).
    fn register(&self) -> usize {
        let mut st = self.state.lock().expect("scheduler lock");
        st.threads.push(ThreadState {
            done: false,
            blocked_on: None,
        });
        st.threads.len() - 1
    }

    /// Picks the next thread to run from the runnable set, following the
    /// replay prefix when inside it and branching left-first beyond it.
    /// Returns false when the execution is over (all done or deadlocked).
    fn advance(&self, st: &mut ExecState) -> bool {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.done && t.blocked_on.is_none())
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.done) {
                st.finished = true;
            } else if st.panic.is_none() {
                // Only joins block, so an empty runnable set with live
                // threads is a join cycle.
                st.panic = Some(format!(
                    "deadlock: all live threads blocked in join; schedule {:?}",
                    chosen_trace(&st.decisions)
                ));
                st.finished = true;
            } else {
                st.finished = true;
            }
            self.cv.notify_all();
            return false;
        }
        let chosen = if st.cursor < st.prefix.len() {
            st.prefix[st.cursor]
        } else {
            0
        };
        assert!(
            chosen < runnable.len(),
            "replay divergence: prefix chose {chosen} of {} runnable (model is nondeterministic \
             outside its atomics?)",
            runnable.len()
        );
        st.decisions.push(Decision {
            chosen,
            runnable: runnable.len(),
        });
        assert!(
            st.decisions.len() <= MAX_DECISIONS,
            "model exceeded {MAX_DECISIONS} scheduling decisions in one execution"
        );
        st.cursor += 1;
        st.current = runnable[chosen];
        self.cv.notify_all();
        true
    }

    /// Blocks until `me` holds the execution token (or the execution was
    /// torn down, in which case the thread unwinds).
    fn wait_for_turn(&self, me: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        while st.current != me && !st.finished {
            st = self.cv.wait(st).expect("scheduler wait");
        }
        if st.finished && st.current != me {
            drop(st);
            panic!("execution aborted");
        }
    }

    /// Scheduling point: the calling thread is about to perform a
    /// visible operation; let the explorer decide who runs it.
    fn yield_point(&self, me: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        debug_assert_eq!(st.current, me, "yield from a thread without the token");
        self.advance(&mut st);
        while st.current != me && !st.finished {
            st = self.cv.wait(st).expect("scheduler wait");
        }
        if st.finished && st.current != me {
            drop(st);
            panic!("execution aborted");
        }
    }

    /// Marks `me` done, wakes its joiners, and hands the token on.
    fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.state.lock().expect("scheduler lock");
        st.threads[me].done = true;
        for t in st.threads.iter_mut() {
            if t.blocked_on == Some(me) {
                t.blocked_on = None;
            }
        }
        if let Some(msg) = panic_msg {
            if st.panic.is_none() {
                st.panic = Some(format!(
                    "model thread {me} panicked: {msg}; schedule {:?}",
                    chosen_trace(&st.decisions)
                ));
            }
        }
        if !st.finished {
            self.advance(&mut st);
        }
    }

    /// Blocks `me` until `target` completes (a scheduling point).
    fn join_thread(&self, me: usize, target: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        if !st.threads[target].done {
            st.threads[me].blocked_on = Some(target);
            self.advance(&mut st);
            while st.current != me && !st.finished {
                st = self.cv.wait(st).expect("scheduler wait");
            }
            if st.finished && st.current != me {
                drop(st);
                panic!("execution aborted");
            }
        }
    }
}

fn chosen_trace(decisions: &[Decision]) -> Vec<usize> {
    decisions.iter().map(|d| d.chosen).collect()
}

thread_local! {
    /// The execution this OS thread participates in, and its model id.
    static CONTEXT: std::cell::RefCell<Option<(StdArc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current_context() -> Option<(StdArc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// The scheduling point every atomic operation passes through. A no-op
/// outside a model (the atomics then behave as plain SeqCst std atomics).
fn schedule_op() {
    if let Some((exec, me)) = current_context() {
        exec.yield_point(me);
    }
}

// ---------------------------------------------------------------------
// Public API: model driver
// ---------------------------------------------------------------------

/// Result of a completed exploration, for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct executions (interleavings) explored.
    pub executions: usize,
}

/// Explores every interleaving of `f`'s atomic operations, panicking on
/// the first execution in which a model thread panics (with the failing
/// schedule), deadlocks, or exploration exceeds [`MAX_EXECUTIONS`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    explore(f);
}

/// [`model`], but returns how many executions were explored — lets tests
/// assert the exploration actually branched.
pub fn explore<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        let exec = Execution::new(prefix.clone());
        let root = {
            let exec = StdArc::clone(&exec);
            let f = StdArc::clone(&f);
            std::thread::spawn(move || {
                CONTEXT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec), 0)));
                exec.wait_for_turn(0);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f()));
                let panic_msg = result.err().map(|p| panic_text(p.as_ref()));
                exec.finish_thread(0, panic_msg);
                CONTEXT.with(|c| *c.borrow_mut() = None);
            })
        };
        // Wait for every model thread to finish this execution.
        {
            let mut st = exec.state.lock().expect("scheduler lock");
            while !st.finished {
                st = exec.cv.wait(st).expect("scheduler wait");
            }
        }
        let _ = root.join();
        executions += 1;
        let st = exec.state.lock().expect("scheduler lock");
        if let Some(p) = &st.panic {
            panic!("loom model failed after {executions} execution(s): {p}");
        }
        assert!(
            executions <= MAX_EXECUTIONS,
            "model too large: exceeded {MAX_EXECUTIONS} executions; shrink the model"
        );
        // DFS odometer: bump the deepest decision that still has an
        // unexplored sibling, truncate everything after it.
        let mut next = st.decisions.clone();
        drop(st);
        loop {
            match next.pop() {
                None => return Report { executions },
                Some(d) if d.chosen + 1 < d.runnable => {
                    next.push(Decision {
                        chosen: d.chosen + 1,
                        runnable: d.runnable,
                    });
                    break;
                }
                Some(_) => {}
            }
        }
        prefix = chosen_trace(&next);
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Public API: threads
// ---------------------------------------------------------------------

/// Model-aware thread spawning and yielding.
pub mod thread {
    use super::{current_context, StdArc, CONTEXT};

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        id: usize,
        result: StdArc<std::sync::Mutex<Option<std::thread::Result<T>>>>,
        os: std::thread::JoinHandle<()>,
    }

    impl<T> JoinHandle<T> {
        /// Waits (as a scheduling point) for the thread to finish and
        /// returns its result, `Err` if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            let (exec, me) = current_context().expect("join outside loom::model");
            exec.join_thread(me, self.id);
            let _ = self.os.join();
            self.result
                .lock()
                .expect("result lock")
                .take()
                .expect("joined thread left no result")
        }
    }

    /// Spawns a model thread. Panics outside [`super::model`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, _me) = current_context().expect("loom::thread::spawn outside loom::model");
        let id = exec.register();
        let result = StdArc::new(std::sync::Mutex::new(None));
        let os = {
            let exec = StdArc::clone(&exec);
            let result = StdArc::clone(&result);
            std::thread::spawn(move || {
                CONTEXT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec), id)));
                exec.wait_for_turn(id);
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let msg = out.as_ref().err().map(|p| super::panic_text(p.as_ref()));
                *result.lock().expect("result lock") = Some(out);
                exec.finish_thread(id, msg);
                CONTEXT.with(|c| *c.borrow_mut() = None);
            })
        };
        JoinHandle { id, result, os }
    }

    /// An explicit scheduling point with no memory effect.
    pub fn yield_now() {
        super::schedule_op();
    }
}

// ---------------------------------------------------------------------
// Public API: sync primitives
// ---------------------------------------------------------------------

/// Model-aware synchronization primitives.
pub mod sync {
    /// `Arc` needs no instrumentation under SeqCst-only exploration.
    pub use std::sync::Arc;

    /// Atomics whose every operation is a scheduling point.
    ///
    /// `Ordering` arguments are accepted for API compatibility; all
    /// operations execute at SeqCst (see the crate docs for why).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;
        use std::sync::atomic::Ordering::SeqCst;

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $int:ty) => {
                /// Model-checked atomic: every op is a scheduling point.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates the atomic with `v`.
                    pub fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Atomic load (scheduling point; executes SeqCst).
                    pub fn load(&self, _order: Ordering) -> $int {
                        super::super::schedule_op();
                        self.0.load(SeqCst)
                    }

                    /// Atomic store (scheduling point; executes SeqCst).
                    pub fn store(&self, v: $int, _order: Ordering) {
                        super::super::schedule_op();
                        self.0.store(v, SeqCst)
                    }

                    /// Atomic add (scheduling point; executes SeqCst).
                    pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                        super::super::schedule_op();
                        self.0.fetch_add(v, SeqCst)
                    }

                    /// Atomic max (scheduling point; executes SeqCst).
                    pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                        super::super::schedule_op();
                        self.0.fetch_max(v, SeqCst)
                    }

                    /// Atomic CAS (scheduling point; executes SeqCst).
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$int, $int> {
                        super::super::schedule_op();
                        self.0.compare_exchange(current, new, SeqCst, SeqCst)
                    }
                }
            };
        }

        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Model-checked atomic bool: every op is a scheduling point.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates the atomic with `v`.
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load (scheduling point; executes SeqCst).
            pub fn load(&self, _order: Ordering) -> bool {
                super::super::schedule_op();
                self.0.load(SeqCst)
            }

            /// Atomic store (scheduling point; executes SeqCst).
            pub fn store(&self, v: bool, _order: Ordering) {
                super::super::schedule_op();
                self.0.store(v, SeqCst)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Self-tests: the checker must find known bugs and pass known-good code
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;

    /// The canonical lost-update bug: two racy load+store increments.
    /// The checker must find the interleaving where the total is 1.
    #[test]
    fn finds_lost_update() {
        let failed = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicU64::new(0));
                let n2 = Arc::clone(&n);
                let t = super::thread::spawn(move || {
                    let v = n2.load(Ordering::SeqCst);
                    n2.store(v + 1, Ordering::SeqCst);
                });
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                t.join().expect("child");
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(failed.is_err(), "model missed the lost-update interleaving");
    }

    /// The fixed version (fetch_add) passes every interleaving, and the
    /// exploration genuinely branches.
    #[test]
    fn fetch_add_survives_all_interleavings() {
        let report = super::explore(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = super::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().expect("child");
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
        assert!(
            report.executions > 1,
            "exploration never branched ({} executions)",
            report.executions
        );
    }

    /// First-writer-wins CAS: exactly one of two racers claims the slot
    /// in every interleaving.
    #[test]
    fn cas_claims_exactly_once() {
        super::model(|| {
            let slot = Arc::new(AtomicU64::new(0));
            let wins = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for id in 1..=2u64 {
                let slot = Arc::clone(&slot);
                let wins = Arc::clone(&wins);
                handles.push(super::thread::spawn(move || {
                    if slot
                        .compare_exchange(0, id, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            for h in handles {
                h.join().expect("racer");
            }
            assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one claim");
            let v = slot.load(Ordering::SeqCst);
            assert!(v == 1 || v == 2, "slot holds a racer id");
        });
    }

    /// Three threads of one op each: 3! = 6 interleavings, no more, no
    /// fewer (the DFS enumerates without duplication).
    #[test]
    fn exploration_counts_are_exact() {
        let report = super::explore(|| {
            let n = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let n = Arc::clone(&n);
                handles.push(super::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                }));
            }
            n.fetch_add(1, Ordering::SeqCst);
            for h in handles {
                h.join().expect("child");
            }
        });
        // Decision points also cover thread births/deaths, so the count
        // is schedule-shapes, not raw 3!; it must at least cover them.
        assert!(
            report.executions >= 6,
            "expected >= 6 interleavings, got {}",
            report.executions
        );
    }

    /// Atomics degrade to plain SeqCst std atomics outside a model.
    #[test]
    fn atomics_work_outside_model() {
        let n = AtomicU64::new(5);
        n.fetch_add(2, Ordering::Relaxed);
        n.fetch_max(6, Ordering::Relaxed);
        assert_eq!(n.load(Ordering::Acquire), 7);
        assert_eq!(
            n.compare_exchange(7, 9, Ordering::AcqRel, Ordering::Acquire),
            Ok(7)
        );
        let b = super::sync::atomic::AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
    }

    /// A panic in a spawned (non-root) thread surfaces as a model
    /// failure rather than hanging the scheduler.
    #[test]
    fn child_panic_fails_the_model() {
        let failed = std::panic::catch_unwind(|| {
            super::model(|| {
                let t = super::thread::spawn(|| {
                    let n = AtomicU64::new(0);
                    n.load(Ordering::SeqCst);
                    panic!("child boom");
                });
                let _ = t.join();
            });
        });
        assert!(failed.is_err(), "child panic must fail the model");
    }
}
