//! Umbrella crate for the reproduction suite of *Mitigating
//! Inter-datacenter Incast with a Proxy* (HotNets '25).
//!
//! The actual functionality lives in the workspace crates:
//!
//! * [`dcsim`] — the packet-level network simulator,
//! * [`incast_core`] — schemes, experiments, orchestration, detection,
//! * [`netproxy`] — the deployable tokio proxies,
//! * [`trace`] — measurement utilities.
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); its library surface simply
//! re-exports the member crates for convenient use from those targets.

pub use dcsim;
pub use incast_core;
pub use netproxy;
pub use trace;
